package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/raerr"
	"repro/regalloc"
	"repro/regalloc/irx"
)

// This file is the request/response schema of the allocation service —
// shared verbatim between the JSONL stdin/stdout mode of cmd/allocbatch
// and the HTTP body of POST /v1/allocate — plus the bounded
// per-configuration engine table and the single-request serving logic both
// front-ends drive.

// Request is one allocation request: a single function (IR) or a whole
// compilation unit (Module), with optional per-request overrides of the
// service's default register count, allocator, machine and coalescing
// policy. Machine names a registered target machine (see
// regalloc.MachineNames); a non-empty value turns on machine-constrained
// allocation — register classes, pre-colored ABI values and caller-saved
// clobbers at calls — instantiated at the request's register count.
// Coalesce names a coalescing policy ("off", "aggressive", "conservative");
// a non-"off" value biases register assignment toward eliminating
// move/φ-induced copies at identical spill cost, and the response carries
// the move report under "coalesce". A request with "stats":true returns
// the service counters instead of allocating.
type Request struct {
	ID        string `json:"id"`
	IR        string `json:"ir,omitempty"`
	Module    string `json:"module,omitempty"`
	Registers int    `json:"registers,omitempty"`
	Allocator string `json:"allocator,omitempty"`
	Machine   string `json:"machine,omitempty"`
	Coalesce  string `json:"coalesce,omitempty"`
	Print     bool   `json:"print,omitempty"`
	Stats     bool   `json:"stats,omitempty"`
}

// CoalesceInfo is the per-function move report of a coalescing-biased
// allocation: the dynamic cost of the function's move/φ copies, how much of
// it the biased assignment eliminated (source and destination got the same
// register) and what remains, plus the affinity-class shape that drove the
// bias. Spill cost is unaffected by bias — the decoupled pipeline fixes the
// spill set before assignment — so EliminatedCost is pure profit.
type CoalesceInfo struct {
	Policy         string  `json:"policy"`
	Moves          int     `json:"moves"`
	MoveCost       float64 `json:"moveCost"`
	EliminatedCost float64 `json:"eliminatedCost"`
	ResidualCost   float64 `json:"residualCost"`
	Classes        int     `json:"classes,omitempty"`
	Merged         int     `json:"merged,omitempty"`
}

// ServiceStats is the payload of a "stats":true response: the resident
// engine count of the bounded per-configuration engine table and, when the
// service runs with an outcome cache, the shared cache counters.
type ServiceStats struct {
	Engines        int    `json:"engines"`
	EngineCapacity int    `json:"engineCapacity"`
	CacheHits      uint64 `json:"cacheHits"`
	CacheMisses    uint64 `json:"cacheMisses"`
	CacheEntries   int    `json:"cacheEntries"`
	CacheEvicted   uint64 `json:"cacheEvicted"`
	CacheBytes     int64  `json:"cacheBytes"`
	CacheCapacity  int    `json:"cacheCapacity"`
}

// Response is one allocation response. Single-function requests fill the
// per-function fields directly; module requests return one entry per
// function, in module order, under Results. Failures come back in Error —
// per-function failures inside a module land on that function's entry
// without failing the sibling functions.
type Response struct {
	ID         string         `json:"id,omitempty"`
	Func       string         `json:"func,omitempty"`
	Allocator  string         `json:"allocator,omitempty"`
	Registers  int            `json:"registers,omitempty"`
	Machine    string         `json:"machine,omitempty"`
	Values     int            `json:"values,omitempty"`
	MaxLive    int            `json:"maxlive,omitempty"`
	Spilled    []string       `json:"spilled,omitempty"`
	SpillCost  float64        `json:"spillCost"`
	Assignment map[string]int `json:"assignment,omitempty"`
	Rewritten  string         `json:"rewritten,omitempty"`
	// Degraded, when non-empty, is the degradation-ladder rung that produced
	// this outcome ("linear-scan" or "spill-all"): the budget-governed
	// service ran out of resources and served a correct but lower-quality
	// allocation instead of failing. DegradedStage is the pipeline stage
	// whose budget trip forced the fall.
	Degraded      string        `json:"degraded,omitempty"`
	DegradedStage string        `json:"degradedStage,omitempty"`
	Coalesce      *CoalesceInfo `json:"coalesce,omitempty"`
	Cached        bool          `json:"cached,omitempty"`
	Results       []Response    `json:"results,omitempty"`
	Stats         *ServiceStats `json:"stats,omitempty"`
	Error         string        `json:"error,omitempty"`
}

// EngineCacheCap bounds the per-configuration engine table: a long-lived
// service fed adversarial (registers, allocator) combinations must not
// grow engines — and their pooled scratch — without limit.
const EngineCacheCap = 64

// EngineCache resolves one shared engine per (registers, allocator)
// request configuration, bounded to EngineCacheCap entries with
// least-recently-used eviction. Engines pool their analysis scratch
// internally, so concurrent requests just share them; evicting an engine
// only drops pooled scratch — with an outcome cache attached, its
// allocation outcomes live on in the shared cache (keys fold the
// configuration), so a re-built engine keeps hitting them.
type EngineCache struct {
	mu      sync.Mutex
	m       map[string]*engineEntry
	shared  *regalloc.Cache // nil when the service runs cache-less
	jobs    int             // worker count for module requests
	seq     uint64
	budget  regalloc.Budget // zero = unbounded
	degrade bool
}

type engineEntry struct {
	eng  *regalloc.Engine
	used uint64 // last-touched tick for LRU eviction
}

// NewEngineCache builds the engine table. A non-nil shared outcome cache is
// attached to every engine; jobs is the per-module-request worker count
// (0 = GOMAXPROCS).
func NewEngineCache(shared *regalloc.Cache, jobs int) *EngineCache {
	return &EngineCache{shared: shared, jobs: jobs}
}

// SharedCache returns the outcome cache the table attaches to its engines,
// or nil.
func (c *EngineCache) SharedCache() *regalloc.Cache { return c.shared }

// SetBudget applies a resource budget — and, with degrade, graceful
// degradation — to every engine the table builds from now on. Call it right
// after NewEngineCache, before the first Get: engines already built keep
// their previous configuration.
func (c *EngineCache) SetBudget(b regalloc.Budget, degrade bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget, c.degrade = b, degrade
}

// Get resolves (or builds and caches) the engine for one request
// configuration. A non-empty machine name selects machine-constrained
// allocation on the named target, instantiated at regs registers; a
// non-empty coalesce names the coalescing policy ("off", "aggressive",
// "conservative"/"briggs") and biases assignment accordingly. The key folds
// the canonical policy name, so alias spellings share one engine while
// distinct policies never do (bias changes assignments, never spills).
func (c *EngineCache) Get(regs int, allocName, machine, coalesce string) (*regalloc.Engine, error) {
	pol, err := regalloc.CoalescePolicyByName(coalesce)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%d\x00%s\x00%s\x00%s", regs, strings.ToLower(allocName), strings.ToLower(machine), pol)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.seq++
	if e, ok := c.m[key]; ok {
		e.used = c.seq
		return e.eng, nil
	}
	opts := []regalloc.Option{regalloc.WithRegisters(regs), regalloc.WithJobs(c.jobs)}
	if allocName != "" {
		opts = append(opts, regalloc.WithAllocator(allocName))
	}
	if machine != "" {
		opts = append(opts, regalloc.WithMachine(machine))
	}
	if pol != regalloc.CoalesceOff {
		opts = append(opts, regalloc.WithCoalescing(pol))
	}
	if c.shared != nil {
		opts = append(opts, regalloc.WithSharedCache(c.shared))
	}
	if c.budget.Active() {
		opts = append(opts, regalloc.WithBudget(c.budget))
		if c.degrade {
			opts = append(opts, regalloc.WithDegradation())
		}
	}
	eng, err := regalloc.New(opts...)
	if err != nil {
		return nil, err
	}
	if c.m == nil {
		c.m = make(map[string]*engineEntry)
	}
	c.m[key] = &engineEntry{eng: eng, used: c.seq}
	if len(c.m) > EngineCacheCap {
		var lruKey string
		lru := uint64(1<<64 - 1)
		for k, e := range c.m {
			if e.used < lru {
				lru, lruKey = e.used, k
			}
		}
		delete(c.m, lruKey)
	}
	return eng, nil
}

// Len returns the resident engine count.
func (c *EngineCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// ServiceStats snapshots the table and (when attached) cache counters.
func (c *EngineCache) ServiceStats() *ServiceStats {
	st := &ServiceStats{Engines: c.Len(), EngineCapacity: EngineCacheCap}
	if c.shared != nil {
		cs := c.shared.Stats()
		st.CacheHits, st.CacheMisses = cs.Hits, cs.Misses
		st.CacheEntries, st.CacheEvicted = cs.Entries, cs.Evicted
		st.CacheBytes, st.CacheCapacity = cs.Bytes, cs.Capacity
	}
	return st
}

// Observer receives serving telemetry from Do: per-stage latencies and
// per-function outcomes. A nil Observer is valid and free.
type Observer interface {
	// ObserveStage records one completed stage (StageParse, StageAllocate).
	ObserveStage(stage string, seconds float64)
	// ObserveFunc records one allocated function: whether it failed and,
	// when it succeeded, its spill quality (spilled cost / total weight).
	ObserveFunc(failed bool, spillRatio float64)
}

// CoalesceObserver is an optional extension of Observer: observers that
// implement it additionally receive the per-function move report of
// coalescing-biased allocations — the Prometheus move-elimination feed.
type CoalesceObserver interface {
	// ObserveCoalesce records one function allocated under a coalescing
	// policy: the dynamic cost of its move/φ copies and how much of that the
	// biased assignment eliminated.
	ObserveCoalesce(moveCost, eliminatedCost float64)
}

// DegradationObserver is an optional extension of Observer: observers that
// implement it additionally receive degradation-ladder and budget-
// exhaustion events from budget-governed engines.
type DegradationObserver interface {
	// ObserveDegraded records one function served from a degradation-ladder
	// rung ("linear-scan", "spill-all") after the named stage tripped.
	ObserveDegraded(rung, stage string)
	// ObserveBudgetExhausted records one function that failed with a budget
	// error (degradation off), by tripping stage.
	ObserveBudgetExhausted(stage string)
}

// observeFuncErr reports a failed function, tagging budget exhaustion for
// observers that track it.
func observeFuncErr(obs Observer, err error) {
	if obs == nil {
		return
	}
	obs.ObserveFunc(true, 0)
	var be *raerr.BudgetError
	if errors.As(err, &be) {
		if do, ok := obs.(DegradationObserver); ok {
			do.ObserveBudgetExhausted(be.Stage)
		}
	}
}

// Do serves one request against the engine table: resolve the engine for
// the request's configuration, parse the IR, allocate, shape the response.
// decodeErr carries an upstream body-decoding failure into the in-band
// error contract. ctx bounds the allocation (module requests are cancelled
// between functions; a single function is the pipeline's atomic unit).
func Do(ctx context.Context, engines *EngineCache, req Request, decodeErr error, defRegs int, defAlloc, defMachine, defCoalesce string, obs Observer) Response {
	resp := Response{ID: req.ID}
	if decodeErr != nil {
		resp.Error = "bad request: " + decodeErr.Error()
		return resp
	}
	if req.Stats {
		resp.Stats = engines.ServiceStats()
		return resp
	}
	if req.IR != "" && req.Module != "" {
		resp.Error = "bad request: ir and module are mutually exclusive"
		return resp
	}
	if req.IR == "" && req.Module == "" {
		resp.Error = "bad request: one of ir or module is required"
		return resp
	}
	r := req.Registers
	if r == 0 {
		r = defRegs
	}
	allocName := req.Allocator
	if allocName == "" {
		allocName = defAlloc
	}
	machine := req.Machine
	if machine == "" {
		machine = defMachine
	}
	coalesceName := req.Coalesce
	if coalesceName == "" {
		coalesceName = defCoalesce
	}
	resp.Registers = r
	resp.Machine = strings.ToLower(machine)
	eng, err := engines.Get(r, allocName, machine, coalesceName)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	if req.Module != "" {
		return serveModule(ctx, eng, req, resp, obs)
	}

	start := time.Now()
	f, err := irx.Parse(req.IR)
	observeStage(obs, StageParse, start)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	resp.Func = f.Name
	start = time.Now()
	out, err := eng.AllocateFunc(ctx, f)
	observeStage(obs, StageAllocate, start)
	if err != nil {
		observeFuncErr(obs, err)
		resp.Error = err.Error()
		return resp
	}
	fillOutcome(&resp, f, out, req.Print, obs)
	return resp
}

// serveModule is the compilation-unit body of Do.
func serveModule(ctx context.Context, eng *regalloc.Engine, req Request, resp Response, obs Observer) Response {
	start := time.Now()
	m, err := irx.ParseModule(req.Module)
	observeStage(obs, StageParse, start)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	start = time.Now()
	results, err := eng.AllocateModule(ctx, m)
	observeStage(obs, StageAllocate, start)
	if err != nil && results == nil {
		resp.Error = err.Error()
		return resp
	}
	resp.Results = make([]Response, len(results))
	for i := range results {
		fr := &results[i]
		sub := Response{Func: fr.Name, Registers: resp.Registers, Machine: resp.Machine, Cached: fr.Cached}
		if fr.Err != nil {
			observeFuncErr(obs, fr.Err)
			sub.Error = fr.Err.Error()
		} else {
			fillOutcome(&sub, m.Funcs[i], fr.Outcome, req.Print, obs)
		}
		resp.Results[i] = sub
	}
	if err != nil && resp.Error == "" {
		// Partial batch (cancellation): the per-function entries carry
		// their state; surface the module-level error too.
		resp.Error = err.Error()
	}
	return resp
}

// fillOutcome shapes one successful allocation outcome into a response.
func fillOutcome(resp *Response, f *irx.Func, out *regalloc.Outcome, print bool, obs Observer) {
	resp.Func = f.Name
	resp.Allocator = out.Result.Allocator
	resp.Values = out.Problem.N()
	resp.MaxLive = out.MaxLive
	resp.SpillCost = out.SpillCost
	for _, v := range out.SpilledValues {
		resp.Spilled = append(resp.Spilled, f.NameOf(v))
	}
	sort.Strings(resp.Spilled)
	if out.RegisterOf != nil {
		resp.Assignment = make(map[string]int)
		for val, reg := range out.RegisterOf {
			if reg >= 0 {
				resp.Assignment[f.NameOf(val)] = reg
			}
		}
	}
	if print && out.Rewritten != nil {
		resp.Rewritten = out.Rewritten.String()
	}
	if st := out.Coalesce; st != nil {
		resp.Coalesce = &CoalesceInfo{
			Policy:         st.Policy.String(),
			Moves:          st.Moves,
			MoveCost:       st.MoveCost,
			EliminatedCost: st.EliminatedCost,
			ResidualCost:   st.ResidualCost,
			Classes:        st.Classes,
			Merged:         st.Merged,
		}
		if co, ok := obs.(CoalesceObserver); ok {
			co.ObserveCoalesce(st.MoveCost, st.EliminatedCost)
		}
	}
	if out.Degraded != nil {
		resp.Degraded = out.Degraded.Rung
		resp.DegradedStage = out.Degraded.Stage
		if do, ok := obs.(DegradationObserver); ok {
			do.ObserveDegraded(out.Degraded.Rung, out.Degraded.Stage)
		}
	}
	if obs != nil {
		ratio := 0.0
		if tw := out.Problem.TotalWeight(); tw > 0 {
			ratio = out.SpillCost / tw
		}
		obs.ObserveFunc(false, ratio)
	}
}

func observeStage(obs Observer, stage string, start time.Time) {
	if obs != nil {
		obs.ObserveStage(stage, time.Since(start).Seconds())
	}
}
