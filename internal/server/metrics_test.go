package server

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8})
	if q := h.quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", q)
	}
	// 100 observations uniform in (0, 1]: p50 interpolates inside the first
	// bucket, p99 stays below its upper bound.
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 100)
	}
	if q := h.quantile(0.5); q != 0.5 {
		t.Errorf("p50 = %v, want 0.5 (linear interpolation in [0,1])", q)
	}
	if q := h.quantile(0.99); q != 0.99 {
		t.Errorf("p99 = %v, want 0.99", q)
	}
	// An observation beyond every bound lands in +Inf and quantiles clamp to
	// the largest finite bound.
	big := newHistogram([]float64{1, 2})
	big.Observe(100)
	if q := big.quantile(0.99); q != 2 {
		t.Errorf("overflow quantile = %v, want the largest finite bound 2", q)
	}
}

func TestHistogramSumAndCount(t *testing.T) {
	h := newHistogram(latencyBounds)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	_, total, sum := h.snapshot()
	if total != 4000 {
		t.Errorf("count = %d, want 4000", total)
	}
	if math.Abs(sum-4.0) > 1e-9 {
		t.Errorf("sum = %v, want 4.0", sum)
	}
}

func TestMetricsWriteRendersAllFamilies(t *testing.T) {
	m := newMetrics(16)
	m.countRequest(200)
	m.countRequest(200)
	m.countRequest(777) // unknown codes fold into 500
	m.observeStage(StageAllocate, 0.002)
	m.observeFunc(false, 0.25)
	m.observeFunc(true, 0)

	var b strings.Builder
	m.write(&b, 3, &cacheStats{hits: 5, misses: 7, evicted: 1, entries: 2, bytes: 1024, capacity: 64})
	text := b.String()
	for _, want := range []string{
		`allocserve_requests_total{code="200"} 2`,
		`allocserve_requests_total{code="500"} 1`,
		`allocserve_funcs_total{result="ok"} 1`,
		`allocserve_funcs_total{result="error"} 1`,
		`allocserve_max_in_flight 16`,
		`allocserve_stage_seconds_count{stage="allocate"} 1`,
		`allocserve_spill_ratio_bucket{le="0.3"} 1`,
		`allocserve_engines 3`,
		`allocserve_cache_hits_total 5`,
		`allocserve_cache_misses_total 7`,
		`allocserve_cache_evicted_total 1`,
		`allocserve_cache_bytes 1024`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
	// Cache-less servers must not advertise cache series at all.
	b.Reset()
	m.write(&b, 1, nil)
	if strings.Contains(b.String(), "allocserve_cache_") {
		t.Error("cache series rendered without a cache")
	}
}
