package server

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// copyFunc has one φ/copy move (y ← x) whose endpoints do not interfere, so
// coalescing-biased assignment can always eliminate it.
const copyFunc = "func c ssa {\nb0:\n  x = param 0\n  y = copy x\n  z = arith y, y\n  ret z\n}"

// TestAllocateWithCoalescing covers the coalescing request surface: a
// per-request policy turns on biased assignment and the response carries the
// move report; the default-off path omits it; unknown policies are in-band
// errors; a server-wide default applies to requests that omit the field and
// an explicit "off" opts back out.
func TestAllocateWithCoalescing(t *testing.T) {
	s := newTestServer(t, Config{Registers: 4})
	_, resp := postJSON(t, s.Handler(), Request{ID: "c1", IR: copyFunc, Coalesce: "conservative"})
	if resp.Error != "" {
		t.Fatalf("coalescing request failed: %+v", resp)
	}
	co := resp.Coalesce
	if co == nil {
		t.Fatal("biased response carries no coalesce block")
	}
	if co.Policy != "conservative" || co.Moves != 1 {
		t.Errorf("coalesce block = %+v, want policy conservative with 1 move", co)
	}
	if co.EliminatedCost <= 0 || co.ResidualCost != 0 || co.MoveCost != co.EliminatedCost {
		t.Errorf("the single non-interfering move must be fully eliminated: %+v", co)
	}

	// Default off: no coalesce block on the response.
	_, resp = postJSON(t, s.Handler(), Request{ID: "c2", IR: copyFunc})
	if resp.Error != "" || resp.Coalesce != nil {
		t.Fatalf("unbiased response must omit the coalesce block: %+v", resp)
	}

	// Unknown policy is an in-band request error.
	_, resp = postJSON(t, s.Handler(), Request{ID: "c3", IR: copyFunc, Coalesce: "optimistic"})
	if resp.Error == "" {
		t.Fatal("unknown coalescing policy accepted")
	}

	// A server-wide default applies when the request omits the field, and
	// an explicit "off" opts the request back out.
	s = newTestServer(t, Config{Registers: 4, Coalesce: "aggressive"})
	_, resp = postJSON(t, s.Handler(), Request{ID: "c4", IR: copyFunc})
	if resp.Error != "" || resp.Coalesce == nil || resp.Coalesce.Policy != "aggressive" {
		t.Fatalf("server default policy not applied: %+v", resp)
	}
	_, resp = postJSON(t, s.Handler(), Request{ID: "c5", IR: copyFunc, Coalesce: "off"})
	if resp.Error != "" || resp.Coalesce != nil {
		t.Fatalf("explicit off did not override the server default: %+v", resp)
	}

	// An invalid default policy is a startup error, not a request error.
	if _, err := New(Config{Registers: 4, Coalesce: "optimistic"}); err == nil {
		t.Fatal("server with unknown default coalescing policy started")
	}
}

// TestCoalesceMetrics: biased allocations feed the Prometheus
// move-elimination counters.
func TestCoalesceMetrics(t *testing.T) {
	s := newTestServer(t, Config{Registers: 4})
	h := s.Handler()
	_, resp := postJSON(t, h, Request{ID: "m1", IR: copyFunc, Coalesce: "aggressive"})
	if resp.Error != "" {
		t.Fatalf("request failed: %+v", resp)
	}
	r := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("metrics status %d", w.Code)
	}
	body := w.Body.String()
	for _, metric := range []string{
		"allocserve_coalesce_funcs_total 1",
		"allocserve_move_cost_total",
		"allocserve_move_eliminated_cost_total",
	} {
		if !strings.Contains(body, metric) {
			t.Errorf("metrics exposition missing %q", metric)
		}
	}
	// The eliminated-cost counter must be non-zero after the biased request.
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "allocserve_move_eliminated_cost_total") {
			if strings.HasSuffix(line, " 0") {
				t.Errorf("eliminated-cost counter still zero: %s", line)
			}
		}
	}
}
