package server

// Chaos soak: drive the server through hundreds of requests under a seeded
// fault plan (allocator panics, stalls, transient encode failures, forced
// cache misses, client cancellations) and assert the robustness contract —
// every request is answered exactly once, the server never crashes or
// deadlocks, a drain afterwards completes cleanly, and the metrics
// exposition stays parseable and consistent with what the clients saw.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/alloc"
	"repro/internal/faultinject"
	"repro/regalloc"
)

// registerChaos installs the fault-injecting allocators once per test
// binary: "chaos-panic" always panics at Allocate, "chaos-stall" always
// sleeps briefly before delegating. Both wrap the general LH allocator, and
// every engine worker gets a private ChaosAllocator instance (the factory
// runs per resolution) sharing one schedule.
var registerChaos sync.Once

func ensureChaosAllocators() {
	registerChaos.Do(func() {
		panicSched := faultinject.NewPlan(11, 1<<20, faultinject.Mix{Panic: 1}).Schedule()
		stallSched := faultinject.NewPlan(12, 1<<20, faultinject.Mix{Stall: 1}).Schedule()
		alloc.MustRegisterAllocator("chaos-panic", false, func() alloc.Allocator {
			return faultinject.NewChaosAllocator("chaos-panic", mustLH(), panicSched, time.Millisecond)
		})
		alloc.MustRegisterAllocator("chaos-stall", false, func() alloc.Allocator {
			return faultinject.NewChaosAllocator("chaos-stall", mustLH(), stallSched, time.Millisecond)
		})
	})
}

func mustLH() alloc.Allocator {
	a, err := alloc.NewByName("LH")
	if err != nil {
		panic(err)
	}
	return a
}

// TestChaosSoakServer is the chaos acceptance soak: ≥300 requests under the
// default fault mix (run with -race).
func TestChaosSoakServer(t *testing.T) {
	n := 320
	if testing.Short() {
		n = 64
	}
	ensureChaosAllocators()
	plan := faultinject.NewPlan(1, n, faultinject.DefaultMix())

	// Transient encode failures: the hook burns down the plan's EncodeError
	// allowance — whichever in-flight requests claim one are answered with
	// an in-band 500 instead (still exactly one response each).
	var encodeFaults atomic.Int64
	encodeFaults.Store(int64(plan.Count(faultinject.EncodeError)))
	testHookEncode = func() error {
		if encodeFaults.Add(-1) >= 0 {
			return errors.New("chaos: injected encoder fault")
		}
		return nil
	}
	defer func() { testHookEncode = nil }()

	s := newTestServer(t, Config{
		MaxInFlight:    64,
		RequestTimeout: 30 * time.Second,
		DrainTimeout:   30 * time.Second,
		CacheSize:      256,
	})
	addr, done, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr.String() + "/v1/allocate"

	type result struct {
		kind   faultinject.Kind
		status int
		resp   Response
		err    error // transport-level failure (expected only for Cancel)
	}
	results := make([]result, n)
	client := &http.Client{Timeout: 30 * time.Second}

	jobs := make(chan int)
	var wg sync.WaitGroup
	const workers = 8
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				kind := plan.At(i)
				req := Request{ID: fmt.Sprintf("req-%d", i), IR: tinyFunc}
				ctx := context.Background()
				var cancel context.CancelFunc
				switch kind {
				case faultinject.Panic:
					req.Allocator = "chaos-panic"
				case faultinject.Stall:
					req.Allocator = "chaos-stall"
				case faultinject.CacheMiss:
					// A novel body forces the outcome cache to miss.
					req.IR = fmt.Sprintf("func miss%d ssa {\nb0:\n  x = param 0\n  y = arith x, x\n  ret y\n}", i)
				case faultinject.Cancel:
					ctx, cancel = context.WithCancel(ctx)
					time.AfterFunc(500*time.Microsecond, cancel)
				}
				body, err := json.Marshal(req)
				if err != nil {
					t.Errorf("request %d: marshal: %v", i, err)
					continue
				}
				hreq, err := http.NewRequestWithContext(ctx, "POST", url, bytes.NewReader(body))
				if err != nil {
					t.Errorf("request %d: build: %v", i, err)
					continue
				}
				hreq.Header.Set("Content-Type", "application/json")
				hresp, err := client.Do(hreq)
				r := result{kind: kind}
				if err != nil {
					r.err = err
				} else {
					raw, rerr := io.ReadAll(hresp.Body)
					hresp.Body.Close()
					r.status = hresp.StatusCode
					if rerr != nil {
						r.err = rerr
					} else if uerr := json.Unmarshal(raw, &r.resp); uerr != nil {
						r.err = fmt.Errorf("response is not JSON (%v): %s", uerr, raw)
					}
				}
				if cancel != nil {
					cancel()
				}
				results[i] = r
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)

	// No deadlock: every request must come back within the soak bound.
	finished := make(chan struct{})
	go func() { wg.Wait(); close(finished) }()
	select {
	case <-finished:
	case <-time.After(120 * time.Second):
		t.Fatal("chaos soak deadlocked: requests never completed")
	}

	// Per-request contract. A transient encode 500 may land on any request
	// (the hook is claimed by whichever request encodes next), so it is
	// checked before the kind-specific expectations.
	completed, encode500 := 0, 0
	for i, r := range results {
		if r.err != nil {
			if r.kind != faultinject.Cancel {
				t.Errorf("request %d (%v): transport error: %v", i, r.kind, r.err)
			}
			continue
		}
		completed++
		if r.status == http.StatusInternalServerError && strings.Contains(r.resp.Error, "transient encode failure") {
			encode500++
			continue
		}
		switch r.kind {
		case faultinject.Panic:
			if r.status != http.StatusOK || !strings.Contains(r.resp.Error, "panic") {
				t.Errorf("request %d (panic): status %d, error %q — want an in-band typed panic error", i, r.status, r.resp.Error)
			}
		case faultinject.Cancel:
			// Raced ahead of its cancellation: any well-formed response is
			// acceptable (success, or an in-band cancellation error).
		default: // None, Stall, CacheMiss: plain successful allocations.
			if r.status != http.StatusOK || r.resp.Error != "" {
				t.Errorf("request %d (%v): status %d, error %q — want clean 200", i, r.kind, r.status, r.resp.Error)
			}
		}
	}
	if left := encodeFaults.Load(); left > 0 {
		t.Errorf("%d scheduled encode faults never fired", left)
	}
	if want := plan.Count(faultinject.EncodeError); encode500 > want {
		t.Errorf("clients saw %d transient-encode 500s, plan scheduled only %d", encode500, want)
	}

	// The battered server must still drain cleanly and exit its serve loop.
	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("Drain after chaos: %v", err)
	}
	if err := <-done; err != nil {
		t.Errorf("serve loop exited with %v", err)
	}

	// Metrics stay parseable and consistent with what the clients saw.
	text := s.MetricsText()
	checkMetricsParse(t, text)
	total := sumMetric(t, text, "allocserve_requests_total")
	if total < float64(completed) {
		t.Errorf("allocserve_requests_total %v < %d completed client responses", total, completed)
	}
	if total > float64(n) {
		t.Errorf("allocserve_requests_total %v > %d requests sent", total, n)
	}
	if v := sumMetric(t, text, "allocserve_in_flight"); v != 0 {
		t.Errorf("allocserve_in_flight = %v after drain, want 0", v)
	}
	if plan.Count(faultinject.Panic) > 0 && sumMetric(t, text, `allocserve_funcs_total{result="error"}`) == 0 {
		t.Error("panic faults fired but allocserve_funcs_total{result=\"error\"} is 0")
	}
}

// checkMetricsParse asserts every non-comment exposition line is
// "name value" or "name{labels} value" with a finite numeric value.
func checkMetricsParse(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable metrics line: %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: bad value: %v", line, err)
		}
		if v != v || v < 0 { // NaN or negative counter/latency
			t.Fatalf("metrics line %q: suspicious value %v", line, v)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 && !strings.HasSuffix(name, "}") {
			t.Fatalf("metrics line %q: unbalanced labels", line)
		}
	}
}

// sumMetric sums the values of all samples whose series name (or exact
// labelled series) matches prefix.
func sumMetric(t *testing.T, text, prefix string) float64 {
	t.Helper()
	sum := 0.0
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		rest, ok := strings.CutPrefix(line, prefix)
		if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '{') {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			t.Fatalf("metrics line %q: %v", line, err)
		}
		sum += v
	}
	return sum
}

// TestServerDegradedRequest: a budget-governed server with degradation on
// answers an over-budget request 200 with a correct degraded outcome, marks
// the response with the ladder rung, and counts it in the metrics.
func TestServerDegradedRequest(t *testing.T) {
	s := newTestServer(t, Config{
		Budget:  regalloc.Budget{Steps: 1},
		Degrade: true,
	})
	w, resp := postJSON(t, s.Handler(), Request{IR: tinyFunc})
	if w.Code != http.StatusOK || resp.Error != "" {
		t.Fatalf("degraded request: status %d, error %q", w.Code, resp.Error)
	}
	if resp.Degraded != regalloc.RungLinearScan && resp.Degraded != regalloc.RungSpillAll {
		t.Fatalf("Degraded = %q, want a ladder rung", resp.Degraded)
	}
	if resp.DegradedStage == "" {
		t.Error("DegradedStage empty on a degraded response")
	}
	text := s.MetricsText()
	if sumMetric(t, text, "allocserve_degraded_total") == 0 {
		t.Error("degraded allocation not counted in allocserve_degraded_total")
	}
}

// TestServerBudgetExhausted: same budget with degradation off — the request
// fails with an in-band typed budget error and the exhaustion is counted by
// tripping stage.
func TestServerBudgetExhausted(t *testing.T) {
	s := newTestServer(t, Config{
		Budget: regalloc.Budget{Steps: 1},
	})
	w, resp := postJSON(t, s.Handler(), Request{IR: tinyFunc})
	if resp.Error == "" {
		t.Fatalf("over-budget request succeeded: status %d, %+v", w.Code, resp)
	}
	if !strings.Contains(resp.Error, "budget") {
		t.Errorf("error %q does not mention the budget", resp.Error)
	}
	if resp.Degraded != "" {
		t.Errorf("Degraded = %q on a failed request", resp.Degraded)
	}
	text := s.MetricsText()
	if sumMetric(t, text, "allocserve_budget_exhausted_total") == 0 {
		t.Error("budget exhaustion not counted in allocserve_budget_exhausted_total")
	}
}
