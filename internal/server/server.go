// Package server is the long-lived allocation service: the paper's
// decoupled spill-then-assign pipeline behind a plain HTTP/1.1 + h2c
// (cleartext HTTP/2) interface, stdlib-only.
//
// Endpoints:
//
//	POST /v1/allocate — one JSON Request (single function or module body,
//	                    the same schema as the allocbatch JSONL service);
//	                    answers one JSON Response.
//	GET  /metrics     — Prometheus text exposition: request/function
//	                    counters, per-stage latency histograms with
//	                    p50/p99 estimates, spill-quality histogram,
//	                    outcome-cache hit/miss/eviction counters and an
//	                    in-flight gauge.
//	GET  /healthz     — liveness: 200 as long as the process serves HTTP
//	                    (stays 200 while draining — a draining process is
//	                    alive and must not be killed mid-drain).
//	GET  /readyz      — readiness: 200 while accepting new work, 503 once
//	                    draining or while admission is saturated (every
//	                    in-flight slot taken); load balancers route on it.
//
// Robustness is first-class: admission is bounded (Config.MaxInFlight;
// excess requests are rejected immediately with 429 + Retry-After rather
// than queued without bound), every request runs under a server-side
// deadline (Config.RequestTimeout, plumbed as a context through the
// engine into pipeline.RunModule), per-function resource budgets with
// graceful degradation are available (Config.Budget, Config.Degrade), and
// Drain performs a graceful shutdown — stop accepting, finish the
// in-flight requests, bounded by Config.DrainTimeout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/regalloc"
)

// Config parameterizes the allocation server.
type Config struct {
	// Registers is the default register count for requests that omit one
	// (required, ≥ 1).
	Registers int
	// Allocator is the default allocator registry name ("" = the engine
	// default: BFPL for strict-SSA functions, LH otherwise).
	Allocator string
	// Machine is the default target-machine name for requests that omit
	// one ("" = unconstrained allocation). A non-empty name turns on
	// machine-constrained allocation — register classes, pre-colored ABI
	// values, call clobbers — instantiated at the request's register count.
	Machine string
	// Coalesce is the default coalescing policy name for requests that omit
	// one ("" or "off" = no bias; "aggressive"; "conservative"/"briggs").
	// A non-off policy biases register assignment toward eliminating move/φ
	// copies at identical spill cost; responses carry the move report and
	// /metrics exposes cumulative move-elimination counters.
	Coalesce string
	// Jobs is the worker count for module-request allocation
	// (0 = GOMAXPROCS).
	Jobs int
	// CacheSize, when > 0, attaches a shared content-addressed outcome
	// cache of that many entries to every engine.
	CacheSize int
	// MaxInFlight bounds concurrently served allocation requests; excess
	// requests are rejected with 429 immediately (no unbounded queueing).
	// 0 picks DefaultMaxInFlight.
	MaxInFlight int
	// RequestTimeout is the per-request allocation deadline (0 picks
	// DefaultRequestTimeout; negative disables the deadline).
	RequestTimeout time.Duration
	// DrainTimeout bounds Drain's wait for in-flight requests (0 picks
	// DefaultDrainTimeout).
	DrainTimeout time.Duration
	// MaxBodyBytes bounds the request body (0 picks DefaultMaxBodyBytes).
	MaxBodyBytes int64
	// Budget, when Active, bounds every allocation's per-function resources:
	// a wall-clock deadline, a cooperative work-step budget, and a
	// max-values/max-blocks admission gate (see regalloc.WithBudget).
	Budget regalloc.Budget
	// Degrade converts per-function budget trips into degraded-but-correct
	// outcomes (Response.Degraded names the ladder rung) instead of
	// per-function errors; see regalloc.WithDegradation.
	Degrade bool
}

// Defaults for the zero Config fields.
const (
	DefaultMaxInFlight    = 128
	DefaultRequestTimeout = 30 * time.Second
	DefaultDrainTimeout   = 30 * time.Second
	DefaultMaxBodyBytes   = 16 << 20
)

// Server is one allocation service instance. Construct with New; a Server
// is safe for concurrent use.
type Server struct {
	cfg      Config
	engines  *EngineCache
	metrics  *metrics
	inflight chan struct{}
	mux      *http.ServeMux
	httpSrv  *http.Server
	draining chan struct{} // closed when Drain starts
}

// New validates cfg (defaults applied in place of zero fields), builds the
// default engine eagerly — configuration errors surface at startup, not on
// the first request — and returns a ready-to-serve Server.
func New(cfg Config) (*Server, error) {
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = DefaultMaxInFlight
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = DefaultRequestTimeout
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBodyBytes
	}
	var shared *regalloc.Cache
	if cfg.CacheSize > 0 {
		shared = regalloc.NewCache(cfg.CacheSize)
	}
	s := &Server{
		cfg:      cfg,
		engines:  NewEngineCache(shared, cfg.Jobs),
		metrics:  newMetrics(cfg.MaxInFlight),
		inflight: make(chan struct{}, cfg.MaxInFlight),
		draining: make(chan struct{}),
	}
	if cfg.Budget.Active() {
		// Before the eager Get below, so the default engine is governed too.
		s.engines.SetBudget(cfg.Budget, cfg.Degrade)
	}
	if _, err := s.engines.Get(cfg.Registers, cfg.Allocator, cfg.Machine, cfg.Coalesce); err != nil {
		return nil, fmt.Errorf("server: invalid default configuration: %w", err)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/allocate", s.handleAllocate)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	protocols := new(http.Protocols)
	protocols.SetHTTP1(true)
	protocols.SetUnencryptedHTTP2(true) // h2c: cleartext HTTP/2, stdlib-native
	s.httpSrv = &http.Server{
		Handler:           s.countingHandler(),
		ReadHeaderTimeout: 10 * time.Second,
		Protocols:         protocols,
	}
	return s, nil
}

// Handler returns the server's HTTP handler (request counting included) —
// the integration-test entry point.
func (s *Server) Handler() http.Handler { return s.httpSrv.Handler }

// Serve accepts connections on ln until Drain (returns nil) or a listener
// error.
func (s *Server) Serve(ln net.Listener) error {
	err := s.httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// ListenAndServe listens on addr and serves until Drain.
func (s *Server) ListenAndServe(addr string) (net.Addr, <-chan error, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	done := make(chan error, 1)
	go func() { done <- s.Serve(ln) }()
	return ln.Addr(), done, nil
}

// Drain gracefully shuts the server down: new connections are refused,
// /readyz flips to 503 (liveness /healthz stays 200), and in-flight
// requests are given up to
// Config.DrainTimeout to finish before the remaining connections are
// closed. It returns nil when everything drained in time.
func (s *Server) Drain(ctx context.Context) error {
	select {
	case <-s.draining:
	default:
		close(s.draining)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if _, hasDeadline := ctx.Deadline(); !hasDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DrainTimeout)
		defer cancel()
	}
	return s.httpSrv.Shutdown(ctx)
}

// Draining reports whether Drain has started.
func (s *Server) Draining() bool {
	select {
	case <-s.draining:
		return true
	default:
		return false
	}
}

// MetricsText renders the Prometheus exposition — what GET /metrics
// serves; front-ends log it as the final flush on drain.
func (s *Server) MetricsText() string {
	var b strings.Builder
	s.writeMetrics(&b)
	return b.String()
}

func (s *Server) writeMetrics(w io.Writer) {
	var cs *cacheStats
	if c := s.engines.SharedCache(); c != nil {
		st := c.Stats()
		cs = &cacheStats{hits: st.Hits, misses: st.Misses, evicted: st.Evicted,
			entries: st.Entries, bytes: st.Bytes, capacity: st.Capacity}
	}
	s.metrics.write(w, s.engines.Len(), cs)
}

// statusRecorder captures the response code for the request counter.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	if r.code == 0 {
		r.code = code
	}
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(b []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.ResponseWriter.Write(b)
}

// countingHandler wraps the mux with the per-code request counter.
func (s *Server) countingHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w}
		s.mux.ServeHTTP(rec, r)
		if rec.code == 0 {
			rec.code = http.StatusOK
		}
		s.metrics.countRequest(rec.code)
	})
}

// handleHealthz is the liveness probe: it answers 200 as long as the
// process serves HTTP at all — including while draining, when killing the
// process would abort in-flight work. Orchestrators restart on liveness;
// they must not restart a cleanly draining server.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleReadyz is the readiness probe: 503 once draining (no new work) or
// while admission is saturated — every in-flight slot taken, so the next
// allocation request would be rejected with 429 anyway. Load balancers
// route on readiness; flipping it early sheds traffic before clients burn a
// round trip on a rejection.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	if len(s.inflight) >= cap(s.inflight) {
		http.Error(w, "saturated", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.writeMetrics(w)
}

// serverObserver adapts the metrics set to the serving Observer.
type serverObserver struct{ m *metrics }

func (o serverObserver) ObserveStage(stage string, seconds float64) { o.m.observeStage(stage, seconds) }
func (o serverObserver) ObserveFunc(failed bool, ratio float64)     { o.m.observeFunc(failed, ratio) }
func (o serverObserver) ObserveDegraded(rung, stage string)         { o.m.observeDegraded(rung, stage) }
func (o serverObserver) ObserveBudgetExhausted(stage string)        { o.m.observeBudgetExhausted(stage) }
func (o serverObserver) ObserveCoalesce(moveCost, eliminatedCost float64) {
	o.m.observeCoalesce(moveCost, eliminatedCost)
}

// testHookServing, when non-nil, runs inside handleAllocate right after
// admission — tests use it to hold requests in flight deterministically.
var testHookServing func()

// testHookEncode, when non-nil, runs right before the response is encoded;
// a non-nil error simulates a transient encoder failure and the request is
// answered with a 500 in-band error instead — the fault-injection seam of
// the chaos tests. The client still receives exactly one response.
var testHookEncode func() error

func (s *Server) handleAllocate(w http.ResponseWriter, r *http.Request) {
	// Bounded admission: reject instead of queueing. A rejected request
	// costs the client one immediate round trip, not an unbounded wait in
	// a deep queue — the client's backoff is the queue.
	select {
	case s.inflight <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		writeJSONError(w, http.StatusTooManyRequests, "over capacity: in-flight request limit reached")
		return
	}
	defer func() { <-s.inflight }()
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)
	if testHookServing != nil {
		testHookServing()
	}

	obs := serverObserver{s.metrics}
	start := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeJSONError(w, http.StatusRequestEntityTooLarge, "request body over limit")
			return
		}
		writeJSONError(w, http.StatusBadRequest, "reading request body: "+err.Error())
		return
	}
	var req Request
	if err := json.Unmarshal(body, &req); err != nil {
		obs.ObserveStage(StageDecode, time.Since(start).Seconds())
		writeJSONError(w, http.StatusBadRequest, "bad request: "+err.Error())
		return
	}
	obs.ObserveStage(StageDecode, time.Since(start).Seconds())

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	resp := Do(ctx, s.engines, req, nil, s.cfg.Registers, s.cfg.Allocator, s.cfg.Machine, s.cfg.Coalesce, obs)

	code := http.StatusOK
	switch {
	case resp.Error != "" && strings.HasPrefix(resp.Error, "bad request:"):
		code = http.StatusBadRequest
	case resp.Error != "" && ctx.Err() != nil && errors.Is(ctx.Err(), context.DeadlineExceeded):
		code = http.StatusGatewayTimeout
	}
	start = time.Now()
	if testHookEncode != nil {
		if err := testHookEncode(); err != nil {
			writeJSONError(w, http.StatusInternalServerError, "transient encode failure: "+err.Error())
			obs.ObserveStage(StageEncode, time.Since(start).Seconds())
			return
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(resp) // client gone mid-write: nothing useful to do
	obs.ObserveStage(StageEncode, time.Since(start).Seconds())
}

// writeJSONError answers an HTTP-level failure with the in-band error
// schema, so clients parse one response shape everywhere.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(Response{Error: msg})
}
