package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync/atomic"
)

// The metrics layer is a minimal, dependency-free Prometheus text-format
// (0.0.4) exposition: counters, gauges and fixed-bucket histograms backed
// by atomics, rendered deterministically. It exists so the allocation
// server can be scraped by any Prometheus-compatible collector without
// pulling a client library into a stdlib-only repository.

// counter is a monotonically increasing metric.
type counter struct{ v atomic.Uint64 }

func (c *counter) Add(n uint64)  { c.v.Add(n) }
func (c *counter) Value() uint64 { return c.v.Load() }

// floatCounter is a monotonically increasing float metric (float64 bits,
// CAS-updated) — dynamic move costs are weighted, not unit counts.
type floatCounter struct{ v atomic.Uint64 }

func (c *floatCounter) Add(f float64) {
	for {
		old := c.v.Load()
		next := math.Float64bits(math.Float64frombits(old) + f)
		if c.v.CompareAndSwap(old, next) {
			return
		}
	}
}
func (c *floatCounter) Value() float64 { return math.Float64frombits(c.v.Load()) }

// gauge is a current-value metric.
type gauge struct{ v atomic.Int64 }

func (g *gauge) Set(n int64)  { g.v.Store(n) }
func (g *gauge) Add(n int64)  { g.v.Add(n) }
func (g *gauge) Value() int64 { return g.v.Load() }

// histogram is a fixed-bound cumulative histogram with an atomic float sum.
// Observations are lock-free; rendering and quantile estimation read a
// point-in-time snapshot of the buckets.
type histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits, CAS-updated
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

func (h *histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound ≥ v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// snapshot returns the per-bucket counts (non-cumulative), total count and
// sum as of one pass over the atomics.
func (h *histogram) snapshot() (counts []uint64, total uint64, sum float64) {
	counts = make([]uint64, len(h.buckets))
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total, math.Float64frombits(h.sum.Load())
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the bucket holding the target rank — the standard
// histogram_quantile estimate. It returns 0 before any observation; ranks
// landing in the +Inf bucket report the largest finite bound.
func (h *histogram) quantile(q float64) float64 {
	counts, total, _ := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	cum := 0.0
	for i, c := range counts {
		prev := cum
		cum += float64(c)
		if cum < rank {
			continue
		}
		if i == len(h.bounds) { // +Inf bucket
			return h.bounds[len(h.bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.bounds[i-1]
		}
		hi := h.bounds[i]
		if c == 0 {
			return hi
		}
		return lo + (hi-lo)*(rank-prev)/float64(c)
	}
	return h.bounds[len(h.bounds)-1]
}

// writeHistogram renders one labelled histogram series.
func writeHistogram(w io.Writer, name, labels string, h *histogram) {
	counts, total, sum := h.snapshot()
	cum := uint64(0)
	for i, b := range h.bounds {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, formatBound(b), cum)
	}
	cum += counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, bareLabels(labels), formatFloat(sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, bareLabels(labels), total)
}

// bareLabels turns a chained label prefix ("stage=\"x\"," or "") into the
// braced form a non-bucket series wants ("{stage=\"x\"}" or nothing).
func bareLabels(labels string) string {
	if n := len(labels); n > 0 {
		if labels[n-1] == ',' {
			labels = labels[:n-1]
		}
		return "{" + labels + "}"
	}
	return ""
}

func formatBound(b float64) string { return strconv.FormatFloat(b, 'g', -1, 64) }

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return strconv.FormatFloat(f, 'f', -1, 64)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// latencyBounds are the per-stage latency buckets in seconds: 50µs to 10s,
// roughly ×2–2.5 per step — allocation of a typical generated function is
// tens of microseconds, a large module request can take seconds.
var latencyBounds = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// spillRatioBounds bucket the per-function spill quality: spilled cost as a
// fraction of the function's total spill weight (0 = nothing spilled).
var spillRatioBounds = []float64{0, 0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1}

// stages are the per-request pipeline stages the server times.
var stages = []string{StageDecode, StageParse, StageAllocate, StageEncode}

// Stage names, exported for observers.
const (
	StageDecode   = "decode"   // read + unmarshal the request body
	StageParse    = "parse"    // textual IR → ir.Func/Module
	StageAllocate = "allocate" // the allocation engine run
	StageEncode   = "encode"   // marshal + write the response
)

// metrics is the server's metric set.
type metrics struct {
	requests    map[int]*counter // by HTTP status code
	funcsOK     counter
	funcsErr    counter
	inFlight    gauge
	maxInFlight int64
	stageLat    map[string]*histogram
	spillHist   *histogram
	// Degradation telemetry: functions served from each ladder rung, and
	// budget-exhaustion failures by tripping stage. Both maps are laid out
	// up front (fixed label sets) so scrapes never race a map write;
	// unknown labels fold into "other".
	degraded      map[string]*counter
	budgetExhaust map[string]*counter
	// Move-elimination telemetry from coalescing-biased allocations: the
	// cumulative dynamic cost of move/φ copies seen and the share the biased
	// assignment eliminated, plus the function count the pair covers.
	coalesceFuncs      counter
	moveCostTotal      floatCounter
	moveEliminatedCost floatCounter
}

// degradedRungs / budgetStages are the fixed label sets of the degradation
// counters (plus the "other" fold-in for labels a newer engine might emit).
var (
	degradedRungs = []string{"linear-scan", "spill-all", "other"}
	budgetStages  = []string{"admission", "liveness", "cliques", "allocate", "assign", "other"}
)

// requestCodes are the status codes the server can answer with; the map is
// laid out up front so scrapes never race a map write.
var requestCodes = []int{200, 400, 404, 405, 408, 413, 429, 500, 503, 504}

func newMetrics(maxInFlight int) *metrics {
	m := &metrics{
		requests:    make(map[int]*counter, len(requestCodes)),
		stageLat:    make(map[string]*histogram, len(stages)),
		spillHist:   newHistogram(spillRatioBounds),
		maxInFlight: int64(maxInFlight),
	}
	for _, c := range requestCodes {
		m.requests[c] = &counter{}
	}
	for _, s := range stages {
		m.stageLat[s] = newHistogram(latencyBounds)
	}
	m.degraded = make(map[string]*counter, len(degradedRungs))
	for _, r := range degradedRungs {
		m.degraded[r] = &counter{}
	}
	m.budgetExhaust = make(map[string]*counter, len(budgetStages))
	for _, s := range budgetStages {
		m.budgetExhaust[s] = &counter{}
	}
	return m
}

func (m *metrics) observeDegraded(rung, stage string) {
	c, ok := m.degraded[rung]
	if !ok {
		c = m.degraded["other"]
	}
	c.Add(1)
}

func (m *metrics) observeCoalesce(moveCost, eliminatedCost float64) {
	m.coalesceFuncs.Add(1)
	m.moveCostTotal.Add(moveCost)
	m.moveEliminatedCost.Add(eliminatedCost)
}

func (m *metrics) observeBudgetExhausted(stage string) {
	c, ok := m.budgetExhaust[stage]
	if !ok {
		c = m.budgetExhaust["other"]
	}
	c.Add(1)
}

func (m *metrics) countRequest(code int) {
	c, ok := m.requests[code]
	if !ok {
		c = m.requests[500]
	}
	c.Add(1)
}

func (m *metrics) observeStage(stage string, seconds float64) {
	if h, ok := m.stageLat[stage]; ok {
		h.Observe(seconds)
	}
}

func (m *metrics) observeFunc(failed bool, spillRatio float64) {
	if failed {
		m.funcsErr.Add(1)
		return
	}
	m.funcsOK.Add(1)
	m.spillHist.Observe(spillRatio)
}

// cacheStats is the slice of outcome-cache counters the exposition needs;
// filled from regalloc.CacheStats at scrape time.
type cacheStats struct {
	hits, misses, evicted uint64
	entries               int
	bytes                 int64
	capacity              int
}

// write renders the full exposition. engines/cache describe the serving
// state at scrape time; cache may be nil when the server runs cache-less.
func (m *metrics) write(w io.Writer, engines int, cache *cacheStats) {
	fmt.Fprint(w, "# HELP allocserve_requests_total HTTP requests served, by status code.\n")
	fmt.Fprint(w, "# TYPE allocserve_requests_total counter\n")
	for _, code := range requestCodes {
		fmt.Fprintf(w, "allocserve_requests_total{code=\"%d\"} %d\n", code, m.requests[code].Value())
	}

	fmt.Fprint(w, "# HELP allocserve_funcs_total Functions allocated, by result.\n")
	fmt.Fprint(w, "# TYPE allocserve_funcs_total counter\n")
	fmt.Fprintf(w, "allocserve_funcs_total{result=\"ok\"} %d\n", m.funcsOK.Value())
	fmt.Fprintf(w, "allocserve_funcs_total{result=\"error\"} %d\n", m.funcsErr.Value())

	fmt.Fprint(w, "# HELP allocserve_in_flight Requests currently being served.\n")
	fmt.Fprint(w, "# TYPE allocserve_in_flight gauge\n")
	fmt.Fprintf(w, "allocserve_in_flight %d\n", m.inFlight.Value())
	fmt.Fprint(w, "# HELP allocserve_max_in_flight The admission bound: requests beyond it are rejected with 429.\n")
	fmt.Fprint(w, "# TYPE allocserve_max_in_flight gauge\n")
	fmt.Fprintf(w, "allocserve_max_in_flight %d\n", m.maxInFlight)

	fmt.Fprint(w, "# HELP allocserve_stage_seconds Per-stage request latency.\n")
	fmt.Fprint(w, "# TYPE allocserve_stage_seconds histogram\n")
	for _, s := range stages {
		writeHistogram(w, "allocserve_stage_seconds", fmt.Sprintf("stage=%q,", s), m.stageLat[s])
	}
	fmt.Fprint(w, "# HELP allocserve_stage_seconds_quantile Estimated latency quantiles per stage (from the histogram buckets).\n")
	fmt.Fprint(w, "# TYPE allocserve_stage_seconds_quantile gauge\n")
	for _, s := range stages {
		h := m.stageLat[s]
		fmt.Fprintf(w, "allocserve_stage_seconds_quantile{stage=%q,q=\"0.5\"} %s\n", s, formatFloat(h.quantile(0.5)))
		fmt.Fprintf(w, "allocserve_stage_seconds_quantile{stage=%q,q=\"0.99\"} %s\n", s, formatFloat(h.quantile(0.99)))
	}

	fmt.Fprint(w, "# HELP allocserve_degraded_total Functions served from a degradation-ladder rung instead of the configured allocator.\n")
	fmt.Fprint(w, "# TYPE allocserve_degraded_total counter\n")
	for _, r := range degradedRungs {
		fmt.Fprintf(w, "allocserve_degraded_total{rung=%q} %d\n", r, m.degraded[r].Value())
	}
	fmt.Fprint(w, "# HELP allocserve_budget_exhausted_total Functions failed on budget exhaustion (degradation off), by tripping stage.\n")
	fmt.Fprint(w, "# TYPE allocserve_budget_exhausted_total counter\n")
	for _, s := range budgetStages {
		fmt.Fprintf(w, "allocserve_budget_exhausted_total{stage=%q} %d\n", s, m.budgetExhaust[s].Value())
	}

	fmt.Fprint(w, "# HELP allocserve_coalesce_funcs_total Functions allocated under a coalescing policy.\n")
	fmt.Fprint(w, "# TYPE allocserve_coalesce_funcs_total counter\n")
	fmt.Fprintf(w, "allocserve_coalesce_funcs_total %d\n", m.coalesceFuncs.Value())
	fmt.Fprint(w, "# HELP allocserve_move_cost_total Cumulative dynamic cost of move/phi copies in coalescing-biased allocations.\n")
	fmt.Fprint(w, "# TYPE allocserve_move_cost_total counter\n")
	fmt.Fprintf(w, "allocserve_move_cost_total %s\n", formatFloat(m.moveCostTotal.Value()))
	fmt.Fprint(w, "# HELP allocserve_move_eliminated_cost_total Cumulative dynamic move cost eliminated by coalescing-biased assignment (same register for source and destination).\n")
	fmt.Fprint(w, "# TYPE allocserve_move_eliminated_cost_total counter\n")
	fmt.Fprintf(w, "allocserve_move_eliminated_cost_total %s\n", formatFloat(m.moveEliminatedCost.Value()))

	fmt.Fprint(w, "# HELP allocserve_spill_ratio Per-function spill quality: spilled cost over total spill weight.\n")
	fmt.Fprint(w, "# TYPE allocserve_spill_ratio histogram\n")
	writeHistogram(w, "allocserve_spill_ratio", "", m.spillHist)

	fmt.Fprint(w, "# HELP allocserve_engines Resident engines in the per-configuration table.\n")
	fmt.Fprint(w, "# TYPE allocserve_engines gauge\n")
	fmt.Fprintf(w, "allocserve_engines %d\n", engines)

	if cache != nil {
		fmt.Fprint(w, "# HELP allocserve_cache_hits_total Outcome-cache hits.\n")
		fmt.Fprint(w, "# TYPE allocserve_cache_hits_total counter\n")
		fmt.Fprintf(w, "allocserve_cache_hits_total %d\n", cache.hits)
		fmt.Fprint(w, "# HELP allocserve_cache_misses_total Outcome-cache misses.\n")
		fmt.Fprint(w, "# TYPE allocserve_cache_misses_total counter\n")
		fmt.Fprintf(w, "allocserve_cache_misses_total %d\n", cache.misses)
		fmt.Fprint(w, "# HELP allocserve_cache_evicted_total Outcome-cache evictions.\n")
		fmt.Fprint(w, "# TYPE allocserve_cache_evicted_total counter\n")
		fmt.Fprintf(w, "allocserve_cache_evicted_total %d\n", cache.evicted)
		fmt.Fprint(w, "# HELP allocserve_cache_entries Resident outcome-cache entries.\n")
		fmt.Fprint(w, "# TYPE allocserve_cache_entries gauge\n")
		fmt.Fprintf(w, "allocserve_cache_entries %d\n", cache.entries)
		fmt.Fprint(w, "# HELP allocserve_cache_bytes Estimated resident bytes of the outcome cache.\n")
		fmt.Fprint(w, "# TYPE allocserve_cache_bytes gauge\n")
		fmt.Fprintf(w, "allocserve_cache_bytes %d\n", cache.bytes)
		fmt.Fprint(w, "# HELP allocserve_cache_capacity Configured outcome-cache entry bound.\n")
		fmt.Fprint(w, "# TYPE allocserve_cache_capacity gauge\n")
		fmt.Fprintf(w, "allocserve_cache_capacity %d\n", cache.capacity)
	}
}
