package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// flakyHandler answers the first `failures` requests according to `code`
// (with an optional Retry-After header), then delegates to the real
// server handler.
type flakyHandler struct {
	remaining  atomic.Int64
	code       int
	retryAfter string
	delegate   http.Handler
	hits       atomic.Int64
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.hits.Add(1)
	if f.remaining.Add(-1) >= 0 {
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		writeJSONError(w, f.code, "injected transient failure")
		return
	}
	f.delegate.ServeHTTP(w, r)
}

// testClient returns a deterministic client (no jitter, recorded virtual
// sleeps) aimed at url.
func testClient(url string, slept *[]time.Duration) *Client {
	return &Client{
		BaseURL:     url,
		MaxAttempts: 5,
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  800 * time.Millisecond,
		jitter:      func(d time.Duration) time.Duration { return d },
		sleep: func(ctx context.Context, d time.Duration) error {
			*slept = append(*slept, d)
			return ctx.Err()
		},
	}
}

// TestClientRetriesTransientFailures: a server that fails a few times with
// retryable statuses is retried on an exponential schedule until the
// request succeeds.
func TestClientRetriesTransientFailures(t *testing.T) {
	s := newTestServer(t, Config{})
	fh := &flakyHandler{code: http.StatusServiceUnavailable, delegate: s.Handler()}
	fh.remaining.Store(3)
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	resp, err := c.Allocate(context.Background(), Request{IR: tinyFunc})
	if err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if resp.Func != "f" || resp.Error != "" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if got := fh.hits.Load(); got != 4 {
		t.Errorf("server saw %d attempts, want 4 (3 failures + success)", got)
	}
	want := []time.Duration{100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("backoff sleeps %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v (exponential, no jitter)", i, slept[i], want[i])
		}
	}
}

// TestClientHonorsRetryAfter: the server's Retry-After pushback floors the
// computed backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{})
	fh := &flakyHandler{code: http.StatusTooManyRequests, retryAfter: "2", delegate: s.Handler()}
	fh.remaining.Store(1)
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	if _, err := c.Allocate(context.Background(), Request{IR: tinyFunc}); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
	if len(slept) != 1 || slept[0] != 2*time.Second {
		t.Fatalf("slept %v, want the server's Retry-After of 2s (> 100ms backoff)", slept)
	}
}

// TestClientExhaustsAttempts: a persistently failing server exhausts
// MaxAttempts and surfaces a typed *AttemptError with the final status.
func TestClientExhaustsAttempts(t *testing.T) {
	s := newTestServer(t, Config{})
	fh := &flakyHandler{code: http.StatusServiceUnavailable, delegate: s.Handler()}
	fh.remaining.Store(1 << 30)
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	_, err := c.Allocate(context.Background(), Request{IR: tinyFunc})
	var ae *AttemptError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *AttemptError", err)
	}
	if ae.Attempts != 5 || ae.Status != http.StatusServiceUnavailable {
		t.Fatalf("AttemptError = %+v, want 5 attempts at 503", ae)
	}
	if got := fh.hits.Load(); got != 5 {
		t.Errorf("server saw %d attempts, want 5", got)
	}
}

// TestClientDoesNotRetryDeterministicFailures: client errors (4xx) and
// in-band allocation failures on a 200 are returned without retry — the
// request would fail identically again.
func TestClientDoesNotRetryDeterministicFailures(t *testing.T) {
	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts.URL, &slept)

	// Malformed IR: a 400, no retry.
	_, err := c.Allocate(context.Background(), Request{})
	var ae *AttemptError
	if !errors.As(err, &ae) || ae.Attempts != 1 || ae.Status != http.StatusBadRequest {
		t.Fatalf("bad request: error %v, want one attempt at 400", err)
	}

	// Unknown allocator: answered 200 with an in-band error — a valid
	// response, not a client failure.
	resp, err := c.Allocate(context.Background(), Request{IR: tinyFunc, Allocator: "no-such-allocator"})
	if err != nil {
		t.Fatalf("in-band failure should not be a client error: %v", err)
	}
	if resp.Error == "" {
		t.Fatal("expected an in-band error for an unknown allocator")
	}
	if len(slept) != 0 {
		t.Fatalf("deterministic failures were retried: sleeps %v", slept)
	}
}

// TestClientRetryBudget: the total retry budget stops the retry loop even
// with attempts left.
func TestClientRetryBudget(t *testing.T) {
	s := newTestServer(t, Config{})
	fh := &flakyHandler{code: http.StatusServiceUnavailable, delegate: s.Handler()}
	fh.remaining.Store(1 << 30)
	ts := httptest.NewServer(fh)
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	c.RetryBudget = 150 * time.Millisecond // the second backoff (200ms) exceeds it
	_, err := c.Allocate(context.Background(), Request{IR: tinyFunc})
	var ae *AttemptError
	if !errors.As(err, &ae) {
		t.Fatalf("error %v is not an *AttemptError", err)
	}
	if ae.Attempts > 2 {
		t.Fatalf("retry budget ignored: %d attempts", ae.Attempts)
	}
}

// TestClientRecoversFromEncodeFaults: transient 500 encoder failures —
// the chaos fault the server injects via its encode hook — are retried
// through to a successful response.
func TestClientRecoversFromEncodeFaults(t *testing.T) {
	var encodeFaults atomic.Int64
	encodeFaults.Store(2)
	testHookEncode = func() error {
		if encodeFaults.Add(-1) >= 0 {
			return errors.New("chaos: injected encoder fault")
		}
		return nil
	}
	defer func() { testHookEncode = nil }()

	s := newTestServer(t, Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var slept []time.Duration
	c := testClient(ts.URL, &slept)
	resp, err := c.Allocate(context.Background(), Request{IR: tinyFunc})
	if err != nil {
		t.Fatalf("Allocate through encode faults: %v", err)
	}
	if resp.Func != "f" || resp.Error != "" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if len(slept) != 2 {
		t.Fatalf("expected 2 retries over the injected encode faults, slept %v", slept)
	}
}

// TestClientResponseDecodes ensures the client decodes the full response
// schema (spot check: the degraded marker round-trips).
func TestClientResponseDecodes(t *testing.T) {
	raw, err := json.Marshal(Response{Func: "f", Degraded: "spill-all", DegradedStage: "liveness"})
	if err != nil {
		t.Fatal(err)
	}
	var resp Response
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Degraded != "spill-all" || resp.DegradedStage != "liveness" {
		t.Fatalf("degraded marker lost in round trip: %+v", resp)
	}
}
