package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const tinyFunc = "func f ssa {\nb0:\n  x = param 0\n  y = arith x, x\n  ret y\n}"

const tinyModule = `func a ssa {
b0:
  x = param 0
  ret x
}

func b ssa {
b0:
  x = param 0
  y = arith x, x
  ret y
}
`

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Registers == 0 {
		cfg.Registers = 4
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func postJSON(t *testing.T, h http.Handler, req Request) (*httptest.ResponseRecorder, Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	return postRaw(t, h, body)
}

func postRaw(t *testing.T, h http.Handler, body []byte) (*httptest.ResponseRecorder, Response) {
	t.Helper()
	r := httptest.NewRequest("POST", "/v1/allocate", bytes.NewReader(body))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	var resp Response
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("response is not JSON (%v): %s", err, w.Body.String())
	}
	return w, resp
}

func TestAllocateSingleFunction(t *testing.T) {
	s := newTestServer(t, Config{Registers: 2})
	w, resp := postJSON(t, s.Handler(), Request{ID: "r1", IR: tinyFunc, Print: true})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, body %s", w.Code, w.Body.String())
	}
	if resp.ID != "r1" || resp.Func != "f" || resp.Error != "" {
		t.Fatalf("unexpected response: %+v", resp)
	}
	if resp.Registers != 2 || resp.Values == 0 || resp.Rewritten == "" {
		t.Errorf("outcome fields missing: %+v", resp)
	}
	if ct := w.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
}

// TestAllocateWithMachine covers the machine-constrained request surface:
// a per-request machine turns on constrained allocation (the response echoes
// the canonical machine name), an unknown machine is an in-band error, and a
// constrained function (pins + clobbers) allocates under the machine whose
// ABI it was annotated for.
func TestAllocateWithMachine(t *testing.T) {
	s := newTestServer(t, Config{Registers: 4})
	const pinnedFunc = "func g ssa {\nb0:\n  x = param 0 !pin=r0\n  y = unary x\n  z = call y !clobbers=r0,r1\n  w = arith y, z\n  ret w\n}"
	_, resp := postJSON(t, s.Handler(), Request{ID: "m1", IR: pinnedFunc, Machine: "ST231"})
	if resp.Error != "" {
		t.Fatalf("constrained request failed: %+v", resp)
	}
	if resp.Machine != "st231" {
		t.Errorf("machine echo = %q, want st231 (canonicalized)", resp.Machine)
	}
	_, resp = postJSON(t, s.Handler(), Request{ID: "m2", IR: tinyFunc, Machine: "pdp11"})
	if resp.Error == "" {
		t.Fatal("unknown machine accepted")
	}
	// A server-wide default machine applies to requests that omit one.
	s = newTestServer(t, Config{Registers: 4, Machine: "armv7"})
	_, resp = postJSON(t, s.Handler(), Request{ID: "m3", IR: tinyFunc})
	if resp.Error != "" || resp.Machine != "armv7" {
		t.Fatalf("default machine not applied: %+v", resp)
	}
	// An invalid default machine is a startup error, not a request error.
	if _, err := New(Config{Registers: 4, Machine: "pdp11"}); err == nil {
		t.Fatal("server with unknown default machine started")
	}
}

func TestAllocateModuleBody(t *testing.T) {
	s := newTestServer(t, Config{Registers: 4})
	w, resp := postJSON(t, s.Handler(), Request{ID: "m1", Module: tinyModule})
	if w.Code != http.StatusOK || resp.Error != "" {
		t.Fatalf("status %d, response %+v", w.Code, resp)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d results, want 2: %+v", len(resp.Results), resp)
	}
	if resp.Results[0].Func != "a" || resp.Results[1].Func != "b" {
		t.Errorf("module order not preserved: %+v", resp.Results)
	}
	for _, sub := range resp.Results {
		if sub.Error != "" || sub.Allocator == "" {
			t.Errorf("per-function entry incomplete: %+v", sub)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	h := s.Handler()

	w, resp := postRaw(t, h, []byte("{not json"))
	if w.Code != http.StatusBadRequest || resp.Error == "" {
		t.Errorf("malformed JSON: status %d, %+v", w.Code, resp)
	}
	w, resp = postJSON(t, h, Request{IR: tinyFunc, Module: tinyModule})
	if w.Code != http.StatusBadRequest || !strings.Contains(resp.Error, "mutually exclusive") {
		t.Errorf("ir+module: status %d, %+v", w.Code, resp)
	}
	w, resp = postJSON(t, h, Request{})
	if w.Code != http.StatusBadRequest || !strings.Contains(resp.Error, "required") {
		t.Errorf("empty request: status %d, %+v", w.Code, resp)
	}
	// Unparseable IR is the requester's fault but not a malformed request:
	// it answers 200 with an in-band error, like the JSONL contract.
	w, resp = postJSON(t, h, Request{IR: "not ir"})
	if w.Code != http.StatusOK || resp.Error == "" {
		t.Errorf("bad IR: status %d, %+v", w.Code, resp)
	}

	r := httptest.NewRequest("GET", "/v1/allocate", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, r)
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/allocate = %d, want 405", rec.Code)
	}
}

func TestBodyTooLarge(t *testing.T) {
	s := newTestServer(t, Config{MaxBodyBytes: 64})
	big, err := json.Marshal(Request{IR: tinyFunc + strings.Repeat(" ", 200)})
	if err != nil {
		t.Fatal(err)
	}
	w, resp := postRaw(t, s.Handler(), big)
	if w.Code != http.StatusRequestEntityTooLarge || resp.Error == "" {
		t.Errorf("oversized body: status %d, %+v", w.Code, resp)
	}
}

func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	w, resp := postJSON(t, s.Handler(), Request{IR: tinyFunc})
	if w.Code != http.StatusGatewayTimeout || resp.Error == "" {
		t.Errorf("expired deadline: status %d, %+v", w.Code, resp)
	}
}

func TestStatsRequest(t *testing.T) {
	s := newTestServer(t, Config{CacheSize: 64})
	h := s.Handler()
	postJSON(t, h, Request{IR: tinyFunc})
	w, resp := postJSON(t, h, Request{ID: "st", Stats: true})
	if w.Code != http.StatusOK || resp.Stats == nil {
		t.Fatalf("stats request: status %d, %+v", w.Code, resp)
	}
	if resp.Stats.Engines != 1 || resp.Stats.CacheCapacity != 64 {
		t.Errorf("stats payload: %+v", resp.Stats)
	}
}

// TestMetricsScrape: the exposition carries every advertised family with
// the counts the served traffic implies.
func TestMetricsScrape(t *testing.T) {
	s := newTestServer(t, Config{Registers: 3, CacheSize: 64, MaxInFlight: 7})
	h := s.Handler()
	// Three successes (2Q admission: ghost, admit, hit) and one bad request.
	postJSON(t, h, Request{IR: tinyFunc})
	postJSON(t, h, Request{IR: tinyFunc})
	postJSON(t, h, Request{IR: tinyFunc})
	postRaw(t, h, []byte("{"))

	r := httptest.NewRequest("GET", "/metrics", nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", w.Code)
	}
	if ct := w.Header().Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("exposition Content-Type = %q", ct)
	}
	text := w.Body.String()
	for _, want := range []string{
		`allocserve_requests_total{code="200"} 3`,
		`allocserve_requests_total{code="400"} 1`,
		`allocserve_funcs_total{result="ok"} 3`,
		`allocserve_in_flight 0`,
		`allocserve_max_in_flight 7`,
		`allocserve_stage_seconds_bucket{stage="allocate",le="+Inf"} 3`,
		`allocserve_stage_seconds_quantile{stage="allocate",q="0.5"}`,
		`allocserve_stage_seconds_quantile{stage="parse",q="0.99"}`,
		`allocserve_spill_ratio_count 3`,
		`allocserve_engines 1`,
		`allocserve_cache_hits_total 1`,
		`allocserve_cache_misses_total 2`,
		`allocserve_cache_capacity 64`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestOverAdmission: with the single admission slot occupied, the next
// request is rejected immediately with 429 + Retry-After, and served again
// once the slot frees.
func TestOverAdmission(t *testing.T) {
	s := newTestServer(t, Config{MaxInFlight: 1})
	h := s.Handler()

	s.inflight <- struct{}{} // occupy the only slot
	w, resp := postJSON(t, h, Request{IR: tinyFunc})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over capacity: status %d, %+v", w.Code, resp)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	<-s.inflight // free the slot

	w, resp = postJSON(t, h, Request{IR: tinyFunc})
	if w.Code != http.StatusOK || resp.Error != "" {
		t.Fatalf("after release: status %d, %+v", w.Code, resp)
	}
	if !strings.Contains(s.MetricsText(), `allocserve_requests_total{code="429"} 1`) {
		t.Error("429 not counted in the request metrics")
	}
}

// TestDrainCompletesInFlight: requests parked inside the handler when
// Drain starts must still complete with 200, the drain must return nil,
// and the listener goroutine must exit cleanly.
func TestDrainCompletesInFlight(t *testing.T) {
	const parked = 3
	s := newTestServer(t, Config{MaxInFlight: 8, DrainTimeout: 10 * time.Second})

	entered := make(chan struct{}, parked)
	release := make(chan struct{})
	testHookServing = func() {
		entered <- struct{}{}
		<-release
	}
	defer func() { testHookServing = nil }()

	addr, done, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	url := "http://" + addr.String() + "/v1/allocate"
	body, err := json.Marshal(Request{IR: tinyFunc})
	if err != nil {
		t.Fatal(err)
	}

	codes := make([]int, parked)
	errs := make([]error, parked)
	var wg sync.WaitGroup
	for i := 0; i < parked; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(url, "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	for i := 0; i < parked; i++ {
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatal("requests did not reach the handler")
		}
	}

	if s.Draining() {
		t.Fatal("Draining() true before Drain")
	}
	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()
	waitUntil(t, s.Draining, "server never entered the draining state")
	// The drain is now waiting on the parked requests; let them finish.
	close(release)

	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
	wg.Wait()
	for i := 0; i < parked; i++ {
		if errs[i] != nil {
			t.Errorf("in-flight request %d failed during drain: %v", i, errs[i])
		} else if codes[i] != http.StatusOK {
			t.Errorf("in-flight request %d answered %d during drain, want 200", i, codes[i])
		}
	}
	if err := <-done; err != nil {
		t.Errorf("serve loop exited with %v", err)
	}

	// A drained server stops reporting ready, but stays alive: readiness
	// (/readyz) flips to 503 so load balancers stop routing, while liveness
	// (/healthz) stays 200 so an orchestrator does not kill the process
	// mid-drain.
	r := httptest.NewRequest("GET", "/readyz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while draining = %d, want 503", w.Code)
	}
	r = httptest.NewRequest("GET", "/healthz", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Errorf("healthz while draining = %d, want 200 (liveness)", w.Code)
	}
}

func TestHealthzServing(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz"} {
		r := httptest.NewRequest("GET", path, nil)
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			t.Errorf("%s = %d, want 200", path, w.Code)
		}
	}
}

// TestReadyzSaturated: a server whose in-flight slots are all taken is alive
// but not ready — /readyz answers 503 "saturated" while /healthz stays 200.
func TestReadyzSaturated(t *testing.T) {
	const slots = 2
	s := newTestServer(t, Config{MaxInFlight: slots})

	entered := make(chan struct{}, slots)
	release := make(chan struct{})
	testHookServing = func() {
		entered <- struct{}{}
		<-release
	}
	defer func() { testHookServing = nil }()

	body, err := json.Marshal(Request{IR: tinyFunc})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < slots; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r := httptest.NewRequest("POST", "/v1/allocate", bytes.NewReader(body))
			s.Handler().ServeHTTP(httptest.NewRecorder(), r)
		}()
	}
	for i := 0; i < slots; i++ {
		select {
		case <-entered:
		case <-time.After(10 * time.Second):
			t.Fatal("requests did not reach the handler")
		}
	}

	r := httptest.NewRequest("GET", "/readyz", nil)
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusServiceUnavailable {
		t.Errorf("readyz while saturated = %d, want 503", w.Code)
	}
	r = httptest.NewRequest("GET", "/healthz", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Errorf("healthz while saturated = %d, want 200", w.Code)
	}

	close(release)
	wg.Wait()

	r = httptest.NewRequest("GET", "/readyz", nil)
	w = httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if w.Code != http.StatusOK {
		t.Errorf("readyz after release = %d, want 200", w.Code)
	}
}

// TestH2CUpgrade: the server speaks cleartext HTTP/2 with prior knowledge —
// the protocol the config advertises.
func TestH2CUpgrade(t *testing.T) {
	s := newTestServer(t, Config{})
	addr, done, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		s.Drain(context.Background())
		<-done
	}()

	client := &http.Client{Transport: h2cTransport(), Timeout: 10 * time.Second}
	body, _ := json.Marshal(Request{IR: tinyFunc})
	resp, err := client.Post("http://"+addr.String()+"/v1/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.ProtoMajor != 2 {
		t.Errorf("negotiated %s, want HTTP/2", resp.Proto)
	}
	if resp.StatusCode != http.StatusOK {
		t.Errorf("h2c request answered %d", resp.StatusCode)
	}
}

func TestNewRejectsBadDefaults(t *testing.T) {
	if _, err := New(Config{Registers: 4, Allocator: "bogus"}); err == nil {
		t.Error("unknown default allocator accepted")
	}
	if _, err := New(Config{Registers: -1}); err == nil {
		t.Error("negative register count accepted")
	}
}

func waitUntil(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// h2cTransport builds a prior-knowledge cleartext HTTP/2 client transport
// from the stdlib server-side support: it dials plain TCP and forces the
// HTTP/2 preface.
func h2cTransport() http.RoundTripper {
	tr := &http.Transport{ForceAttemptHTTP2: true}
	p := new(http.Protocols)
	p.SetUnencryptedHTTP2(true)
	p.SetHTTP1(false)
	tr.Protocols = p
	return tr
}
