package bitset

import "testing"

func TestArenaSetAndSlab(t *testing.T) {
	var a Arena
	s := a.Set(130)
	s.Add(0)
	s.Add(129)
	if s.Count() != 2 || !s.Has(129) {
		t.Fatalf("arena set broken: %v", s)
	}
	slab := a.Slab(3, 70)
	for i, row := range slab {
		row.Add(i)
	}
	for i, row := range slab {
		if row.Count() != 1 || !row.Has(i) {
			t.Fatalf("slab row %d polluted: %v", i, row)
		}
	}
	// The earlier carving must be untouched by later ones.
	if s.Count() != 2 {
		t.Fatalf("earlier carving clobbered: %v", s)
	}
}

func TestArenaResetReusesAndClears(t *testing.T) {
	var a Arena
	for round := 0; round < 3; round++ {
		a.Reset()
		slab := a.Slab(4, 64)
		for _, row := range slab {
			if row.Count() != 0 {
				t.Fatalf("round %d: carved set not empty: %v", round, row)
			}
			row.Add(round)
		}
		s := a.Set(64)
		if s.Count() != 0 {
			t.Fatalf("round %d: carved set not empty", round)
		}
	}
}

func TestArenaGrowthKeepsEarlierCarvings(t *testing.T) {
	var a Arena
	first := a.Set(64)
	first.Add(7)
	// Force a growth well past the initial chunk.
	big := a.Set(1 << 20)
	big.Add(1 << 19)
	if !first.Has(7) || first.Count() != 1 {
		t.Fatal("growth invalidated an earlier carving")
	}
	if !big.Has(1 << 19) {
		t.Fatal("grown set broken")
	}
}

func TestArenaInts(t *testing.T) {
	var a Arena
	s := a.Ints(4)
	if len(s) != 0 || cap(s) != 4 {
		t.Fatalf("Ints: len=%d cap=%d, want 0/4", len(s), cap(s))
	}
	s = append(s, 1, 2, 3, 4)
	u := a.Ints(4)
	u = append(u, 9)
	if s[0] != 1 || s[3] != 4 {
		t.Fatalf("later carving overlapped earlier one: %v", s)
	}
	_ = u
}
