// Package bitset provides dense word-packed bit sets over small integer
// universes [0, n). They back the hot data structures of the allocator —
// graph adjacency rows, liveness sets, interference construction — replacing
// map[int]bool with O(n/64) bulk operations and allocation-free iteration.
//
// A Set is a plain []uint64; the zero value is the empty set over an empty
// universe. Or and OrChanged require the receiver to be sized for the
// operand's universe (len(s) >= len(t)); the remaining binary operations
// tolerate length mismatches by treating missing high words as zero.
package bitset

import (
	"math/bits"
	"sync"
)

const wordBits = 64

// Set is a bit set stored as little-endian 64-bit words: bit i lives in
// word i/64 at position i%64.
type Set []uint64

// Words returns the number of words needed for a universe of n bits.
func Words(n int) int { return (n + wordBits - 1) / wordBits }

// New returns an empty set sized for the universe [0, n).
func New(n int) Set { return make(Set, Words(n)) }

// NewSlab returns count empty sets over the universe [0, n), all sub-sliced
// (capacity-capped) from one backing allocation so they sit contiguously in
// memory — the layout for adjacency rows and per-block liveness sets.
func NewSlab(count, n int) []Set {
	w := Words(n)
	slab := make(Set, count*w)
	out := make([]Set, count)
	for i := range out {
		out[i] = slab[i*w : (i+1)*w : (i+1)*w]
	}
	return out
}

// Has reports whether i is in the set. i must be within the sized universe.
func (s Set) Has(i int) bool {
	w := i >> 6
	return w < len(s) && s[w]&(1<<(uint(i)&63)) != 0
}

// Add inserts i. i must be within the sized universe.
func (s Set) Add(i int) { s[i>>6] |= 1 << (uint(i) & 63) }

// Remove deletes i (a no-op when absent).
func (s Set) Remove(i int) {
	if w := i >> 6; w < len(s) {
		s[w] &^= 1 << (uint(i) & 63)
	}
}

// Count returns the number of elements.
func (s Set) Count() int {
	total := 0
	for _, w := range s {
		total += bits.OnesCount64(w)
	}
	return total
}

// Clear removes every element, keeping capacity.
func (s Set) Clear() {
	for i := range s {
		s[i] = 0
	}
}

// Clone returns an independent copy.
func (s Set) Clone() Set {
	c := make(Set, len(s))
	copy(c, s)
	return c
}

// CopyFrom overwrites s with t. The sets must be sized for the same
// universe (len(s) >= len(t)); extra high words of s are zeroed.
func (s Set) CopyFrom(t Set) {
	n := copy(s, t)
	for i := n; i < len(s); i++ {
		s[i] = 0
	}
}

// Or adds every element of t to s (s |= t). The receiver must be sized for
// t's universe: len(s) >= len(t).
func (s Set) Or(t Set) {
	for i, w := range t {
		s[i] |= w
	}
}

// OrChanged performs s |= t and reports whether s changed. The receiver
// must be sized for t's universe: len(s) >= len(t).
func (s Set) OrChanged(t Set) bool {
	changed := false
	for i, w := range t {
		if old := s[i]; old|w != old {
			s[i] = old | w
			changed = true
		}
	}
	return changed
}

// And intersects s with t (s &= t).
func (s Set) And(t Set) {
	for i := range s {
		if i < len(t) {
			s[i] &= t[i]
		} else {
			s[i] = 0
		}
	}
}

// AndNot removes every element of t from s (s &^= t).
func (s Set) AndNot(t Set) {
	for i, w := range t {
		if i >= len(s) {
			break
		}
		s[i] &^= w
	}
}

// IntersectionCount returns |s ∩ t| without materializing the intersection.
func (s Set) IntersectionCount(t Set) int {
	n := min(len(s), len(t))
	total := 0
	for i := 0; i < n; i++ {
		total += bits.OnesCount64(s[i] & t[i])
	}
	return total
}

// Equal reports whether s and t contain the same elements.
func (s Set) Equal(t Set) bool {
	n := max(len(s), len(t))
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s) {
			a = s[i]
		}
		if i < len(t) {
			b = t[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// ForEach calls fn for every element in ascending order.
func (s Set) ForEach(fn func(i int)) {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// AppendTo appends the elements in ascending order to dst and returns it.
func (s Set) AppendTo(dst []int) []int {
	for wi, w := range s {
		base := wi << 6
		for w != 0 {
			dst = append(dst, base+bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
	return dst
}

// HashInts hashes an int slice with word-level FNV-1a, for deduplicating
// sets kept as sorted slices without building a string key. One
// xor-multiply per element: the hash is only a bucket key (collisions fall
// back to slice comparison), so discrimination matters and avalanche does
// not.
func HashInts(s []int) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	h := uint64(offset64)
	for _, v := range s {
		h ^= uint64(v)
		h *= prime64
	}
	return h
}

// pool recycles scratch sets for transient use in hot loops. Get and Put
// traffic in *Set so the pooled box itself is reused and the steady state
// allocates nothing.
var pool = sync.Pool{New: func() any { return new(Set) }}

// Get returns a cleared scratch set sized for [0, n) from the pool. Return
// it with Put when done; Set's value-receiver methods work through the
// pointer unchanged.
func Get(n int) *Set {
	p := pool.Get().(*Set)
	w := Words(n)
	s := *p
	if cap(s) < w {
		s = make(Set, w)
	} else {
		s = s[:w]
		s.Clear()
	}
	*p = s
	return p
}

// Put returns a scratch set obtained from Get to the pool.
func Put(p *Set) {
	pool.Put(p)
}
