package bitset

import "slices"

// Interner deduplicates sorted int slices (live sets, cliques) by content.
// Lookup is by FNV hash with an overflow list for the rare hash collision,
// so the common path costs one map probe and one slice comparison.
type Interner struct {
	first    map[uint64]int32   // hash → index of the first set hashing to it
	overflow map[uint64][]int32 // further indices on hash collision (rare)
	sets     [][]int
	slab     []int // backing storage for copied sets
}

// NewInterner returns an interner expecting roughly sizeHint inserts.
func NewInterner(sizeHint int) *Interner {
	return &Interner{first: make(map[uint64]int32, sizeHint)}
}

// Intern returns the canonical index of s, copying it into the interner's
// slab when new. added reports whether a new entry was created.
func (it *Interner) Intern(s []int) (idx int, added bool) {
	return it.intern(s, true)
}

// InternRef is Intern but stores s itself (no copy) when new; the caller
// must not mutate s afterwards.
func (it *Interner) InternRef(s []int) (idx int, added bool) {
	return it.intern(s, false)
}

func (it *Interner) intern(s []int, copyIn bool) (int, bool) {
	h := HashInts(s)
	if j, ok := it.first[h]; ok {
		if slices.Equal(it.sets[j], s) {
			return int(j), false
		}
		for _, k := range it.overflow[h] {
			if slices.Equal(it.sets[k], s) {
				return int(k), false
			}
		}
		if it.overflow == nil {
			it.overflow = make(map[uint64][]int32)
		}
		it.overflow[h] = append(it.overflow[h], int32(len(it.sets)))
	} else {
		it.first[h] = int32(len(it.sets))
	}
	stored := s
	if copyIn {
		start := len(it.slab)
		it.slab = append(it.slab, s...)
		// Earlier sub-slices stay valid across slab regrowth: they keep the
		// old backing array alive and interned sets are immutable.
		stored = it.slab[start:len(it.slab):len(it.slab)]
	}
	it.sets = append(it.sets, stored)
	return len(it.sets) - 1, true
}

// Sets returns the interned sets in first-appearance order. The slice is
// shared with the interner; callers may reorder it but not mutate the sets.
func (it *Interner) Sets() [][]int { return it.sets }

// Len returns the number of distinct sets interned so far.
func (it *Interner) Len() int { return len(it.sets) }

// Reset empties the interner while keeping its backing memory (hash tables,
// set headers, slab), so one interner can be recycled across many analysis
// passes. Everything previously returned by Sets is invalidated.
func (it *Interner) Reset() {
	clear(it.first)
	clear(it.overflow)
	it.sets = it.sets[:0]
	it.slab = it.slab[:0]
}
