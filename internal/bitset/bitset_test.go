package bitset

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func TestBasicOps(t *testing.T) {
	s := New(200)
	for _, v := range []int{0, 63, 64, 127, 128, 199} {
		if s.Has(v) {
			t.Fatalf("fresh set has %d", v)
		}
		s.Add(v)
		if !s.Has(v) {
			t.Fatalf("Add(%d) not visible", v)
		}
	}
	if got := s.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	s.Remove(64)
	if s.Has(64) || s.Count() != 5 {
		t.Fatalf("Remove(64) failed: count=%d", s.Count())
	}
	s.Clear()
	if s.Count() != 0 {
		t.Fatal("Clear left elements")
	}
}

func TestSetAlgebra(t *testing.T) {
	a, b := New(130), New(130)
	for _, v := range []int{1, 5, 64, 100} {
		a.Add(v)
	}
	for _, v := range []int{5, 64, 129} {
		b.Add(v)
	}

	or := a.Clone()
	or.Or(b)
	if got := or.AppendTo(nil); !equalInts(got, []int{1, 5, 64, 100, 129}) {
		t.Fatalf("Or = %v", got)
	}

	and := a.Clone()
	and.And(b)
	if got := and.AppendTo(nil); !equalInts(got, []int{5, 64}) {
		t.Fatalf("And = %v", got)
	}

	andnot := a.Clone()
	andnot.AndNot(b)
	if got := andnot.AppendTo(nil); !equalInts(got, []int{1, 100}) {
		t.Fatalf("AndNot = %v", got)
	}

	if got := a.IntersectionCount(b); got != 2 {
		t.Fatalf("IntersectionCount = %d, want 2", got)
	}

	c := a.Clone()
	if c.OrChanged(b) != true {
		t.Fatal("OrChanged on differing sets = false")
	}
	if c.OrChanged(b) != false {
		t.Fatal("OrChanged twice = true")
	}
}

func TestEqualAcrossSizes(t *testing.T) {
	a, b := New(64), New(256)
	for _, v := range []int{3, 17, 63} {
		a.Add(v)
		b.Add(v)
	}
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatal("Equal fails across universe sizes")
	}
	b.Add(200)
	if a.Equal(b) {
		t.Fatal("Equal ignores high bits")
	}
}

func TestHashIntsMatchesElements(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		s := New(500)
		var vals []int
		for i := 0; i < 30; i++ {
			v := rng.Intn(500)
			if !s.Has(v) {
				s.Add(v)
				vals = append(vals, v)
			}
		}
		sort.Ints(vals)
		if HashInts(vals) != HashInts(s.AppendTo(nil)) {
			t.Fatal("HashInts not stable over identical content")
		}
	}
}

func TestForEachAscending(t *testing.T) {
	s := New(300)
	want := []int{0, 1, 63, 64, 65, 128, 250, 299}
	for _, v := range want {
		s.Add(v)
	}
	var got []int
	s.ForEach(func(i int) { got = append(got, i) })
	if !equalInts(got, want) {
		t.Fatalf("ForEach = %v, want %v", got, want)
	}
	if got2 := s.AppendTo(nil); !equalInts(got2, want) {
		t.Fatalf("AppendTo = %v, want %v", got2, want)
	}
}

func TestCopyFrom(t *testing.T) {
	a, b := New(128), New(128)
	a.Add(5)
	a.Add(127)
	b.Add(70)
	b.CopyFrom(a)
	if !b.Equal(a) {
		t.Fatal("CopyFrom not an overwrite")
	}
}

func TestPool(t *testing.T) {
	s := Get(100)
	if s.Count() != 0 || len(*s) != Words(100) {
		t.Fatalf("Get returned dirty or mis-sized set: len=%d", len(*s))
	}
	s.Add(42)
	Put(s)
	s2 := Get(50)
	if s2.Count() != 0 {
		t.Fatal("pooled set not cleared on reuse")
	}
	Put(s2)
}

func TestInterner(t *testing.T) {
	it := NewInterner(4)
	a := []int{1, 5, 9}
	idx, added := it.Intern(a)
	if idx != 0 || !added {
		t.Fatalf("first Intern = (%d, %v), want (0, true)", idx, added)
	}
	// Mutating the caller's slice must not affect the interned copy.
	a[0] = 99
	if idx, added := it.Intern([]int{1, 5, 9}); idx != 0 || added {
		t.Fatalf("re-Intern = (%d, %v), want (0, false)", idx, added)
	}
	if idx, added := it.Intern([]int{1, 5}); idx != 1 || !added {
		t.Fatalf("prefix Intern = (%d, %v), want (1, true)", idx, added)
	}
	ref := []int{2, 4}
	if idx, added := it.InternRef(ref); idx != 2 || !added {
		t.Fatalf("InternRef = (%d, %v), want (2, true)", idx, added)
	}
	sets := it.Sets()
	if len(sets) != 3 || !equalInts(sets[0], []int{1, 5, 9}) ||
		!equalInts(sets[1], []int{1, 5}) || !equalInts(sets[2], []int{2, 4}) {
		t.Fatalf("Sets = %v", sets)
	}
	// InternRef shares the caller's backing array.
	ref[0] = 7
	if sets[2][0] != 7 {
		t.Fatal("InternRef copied instead of referencing")
	}
}

func TestInternerManyRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	it := NewInterner(0)
	ref := make(map[string]int)
	var order []string
	for trial := 0; trial < 2000; trial++ {
		s := make([]int, rng.Intn(6))
		for i := range s {
			s[i] = rng.Intn(8)
		}
		sort.Ints(s)
		key := fmt.Sprint(s)
		idx, added := it.Intern(s)
		if want, ok := ref[key]; ok {
			if added || idx != want {
				t.Fatalf("Intern(%v) = (%d, %v), want (%d, false)", s, idx, added, want)
			}
		} else {
			if !added || idx != len(ref) {
				t.Fatalf("Intern(%v) = (%d, %v), want (%d, true)", s, idx, added, len(ref))
			}
			ref[key] = idx
			order = append(order, key)
		}
	}
	sets := it.Sets()
	if len(sets) != len(order) {
		t.Fatalf("Sets has %d entries, want %d", len(sets), len(order))
	}
	for i, key := range order {
		if fmt.Sprint(sets[i]) != key {
			t.Fatalf("Sets[%d] = %v, want %s", i, sets[i], key)
		}
	}
}

func TestRandomAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 700
	s := New(n)
	ref := make(map[int]bool)
	for op := 0; op < 5000; op++ {
		v := rng.Intn(n)
		switch rng.Intn(3) {
		case 0:
			s.Add(v)
			ref[v] = true
		case 1:
			s.Remove(v)
			delete(ref, v)
		case 2:
			if s.Has(v) != ref[v] {
				t.Fatalf("Has(%d) mismatch at op %d", v, op)
			}
		}
	}
	if s.Count() != len(ref) {
		t.Fatalf("Count = %d, want %d", s.Count(), len(ref))
	}
	var want []int
	for v := range ref {
		want = append(want, v)
	}
	sort.Ints(want)
	if got := s.AppendTo(nil); !equalInts(got, want) {
		t.Fatalf("AppendTo mismatch: %v vs %v", got, want)
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
