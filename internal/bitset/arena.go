package bitset

// Arena is a bump allocator for the transient structures of one analysis
// pass: bit sets (and slabs of them) plus plain []int scratch. It exists so
// a long-lived worker — the batch pipeline runs thousands of functions per
// worker — can recycle one backing allocation across functions instead of
// re-making every slab per call.
//
// Reset invalidates everything previously carved: callers own the lifetime
// contract (nothing handed out may be retained across Reset). Carving more
// than the current backing holds allocates a larger chunk; earlier carvings
// stay valid because the old chunk is only dropped, never overwritten.
//
// The zero value is ready to use. An Arena is not safe for concurrent use;
// give each worker its own.
type Arena struct {
	words []uint64
	wOff  int
	hdrs  []Set
	hOff  int
	ints  []int
	iOff  int
}

// Reset recycles the arena: every Set, slab and []int previously carved is
// invalidated and the backing memory is reused by subsequent carvings.
func (a *Arena) Reset() {
	a.wOff, a.hOff, a.iOff = 0, 0, 0
}

// grow* ensure room for n more elements, allocating a fresh chunk when the
// current one is exhausted (previously carved slices keep the old chunk
// alive until the next GC cycle after their own death).

// The new chunk is exactly the request for a virgin arena (a one-shot use
// costs no more than direct allocation) and doubles from there, so reused
// arenas converge on zero growths per Reset cycle.

func (a *Arena) growWords(n int) {
	if a.wOff+n > len(a.words) {
		a.words = make([]uint64, max(n, 2*len(a.words)))
		a.wOff = 0
	}
}

func (a *Arena) growHdrs(n int) {
	if a.hOff+n > len(a.hdrs) {
		a.hdrs = make([]Set, max(n, 2*len(a.hdrs)))
		a.hOff = 0
	}
}

func (a *Arena) growInts(n int) {
	if a.iOff+n > len(a.ints) {
		a.ints = make([]int, max(n, 2*len(a.ints)))
		a.iOff = 0
	}
}

// Set carves one empty set over the universe [0, n).
func (a *Arena) Set(n int) Set {
	w := Words(n)
	a.growWords(w)
	s := Set(a.words[a.wOff : a.wOff+w : a.wOff+w])
	a.wOff += w
	s.Clear() // the chunk is reused across Reset
	return s
}

// Slab carves count empty sets over [0, n), contiguous in memory — the
// arena-backed equivalent of NewSlab.
func (a *Arena) Slab(count, n int) []Set {
	w := Words(n)
	a.growWords(count * w)
	a.growHdrs(count)
	base := a.words[a.wOff : a.wOff+count*w]
	for i := range base {
		base[i] = 0
	}
	out := a.hdrs[a.hOff : a.hOff+count : a.hOff+count]
	for i := range out {
		out[i] = Set(base[i*w : (i+1)*w : (i+1)*w])
	}
	a.wOff += count * w
	a.hOff += count
	return out
}

// Ints carves an empty []int with capacity n, for append-style filling
// without escaping to the heap.
func (a *Arena) Ints(n int) []int {
	a.growInts(n)
	s := a.ints[a.iOff : a.iOff : a.iOff+n]
	a.iOff += n
	return s
}
