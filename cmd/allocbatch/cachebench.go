package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/workload"
)

// The outcome-cache benchmark (-cachebench) measures the content-addressed
// cache and incremental recompilation end to end over duplication-controlled
// corpora: module throughput with the cache off / cold / warm at the
// configured duplication rate, the pure cache overhead on duplication-free
// traffic, the per-function cost of a warm hit against a full allocation,
// and the cost of an incremental revision against the fraction of functions
// that changed. It writes BENCH_cache.json (CI artifact) so the cache's
// perf claims are tracked in data.

type cacheBenchConfig struct {
	Funcs     int
	Seed      int64
	Registers int
	Allocator string
	Rounds    int
	DupRate   float64
	OutPath   string
}

// cacheBenchRow is one measured configuration; cache counters are the
// totals after the measured pass.
type cacheBenchRow struct {
	Name        string  `json:"name"`
	CacheOn     bool    `json:"cache_on"`
	Warm        bool    `json:"warm"`
	DupRate     float64 `json:"dup_rate"`
	FuncsPerSec float64 `json:"funcs_per_sec"`
	NsPerFunc   float64 `json:"ns_per_func"`
	Hits        uint64  `json:"hits"`
	Misses      uint64  `json:"misses"`
}

// cacheBenchReport is the BENCH_cache.json schema. All rows run at jobs=1
// with scratch reuse — the steady-state configuration — so the ratios
// isolate the cache, not scheduling.
type cacheBenchReport struct {
	Bench      string          `json:"bench"`
	GoVersion  string          `json:"go"`
	CPUs       int             `json:"cpus"`
	GOMAXPROCS int             `json:"gomaxprocs"`
	Functions  int             `json:"functions"`
	Seed       int64           `json:"seed"`
	Registers  int             `json:"registers"`
	Allocator  string          `json:"allocator"`
	Rounds     int             `json:"rounds"`
	DupRate    float64         `json:"dup_rate"`
	Configs    []cacheBenchRow `json:"configs"`
	// Module throughput on the duplicated corpus: warm (every function
	// resident) and cold (one pass from an empty cache, hits arriving as
	// duplicates repeat) against the cache-off baseline.
	SpeedupWarmDup float64 `json:"speedup_warm_cache_dup_vs_off"`
	SpeedupColdDup float64 `json:"speedup_cold_cache_dup_vs_off"`
	// Cache tax on duplication-free traffic: one cold pass with the cache
	// on versus the cache off (2Q admission means no entry is ever built).
	OverheadUniquePct float64 `json:"overhead_cache_on_unique_pct"`
	// Per-function warm-hit cost against a full allocation.
	HitNsPerFunc  float64 `json:"warm_hit_ns_per_func"`
	FullNsPerFunc float64 `json:"full_alloc_ns_per_func"`
	HitSpeedup    float64 `json:"hit_speedup_vs_full_alloc"`
	// Incremental recompilation time as a fraction of a full run when 10%
	// and 50% of the module's functions changed (ideal: the fraction plus
	// a fingerprint pass).
	IncrRatio10 float64 `json:"incremental_time_ratio_10pct_changed"`
	IncrRatio50 float64 `json:"incremental_time_ratio_50pct_changed"`
}

func runCacheBench(out io.Writer, cfg cacheBenchConfig) error {
	if cfg.Funcs < 10 {
		return fmt.Errorf("cachebench: -funcs must be ≥ 10")
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	if cfg.DupRate < 0 || cfg.DupRate >= 1 {
		return fmt.Errorf("cachebench: -dup must be in [0, 1)")
	}
	dupM := workload.GenDuplicated(cfg.Seed, cfg.Funcs, cfg.DupRate)
	uniqM := workload.GenDuplicated(cfg.Seed+1, cfg.Funcs, 0)
	fmt.Fprintf(out, "cachebench: %d functions (seed %d), dup rate %.0f%%, R=%d, %d rounds per config\n",
		cfg.Funcs, cfg.Seed, cfg.DupRate*100, cfg.Registers, cfg.Rounds)

	newEng := func(cacheCap int) (*regalloc.Engine, error) {
		opts := []regalloc.Option{regalloc.WithRegisters(cfg.Registers), regalloc.WithJobs(1)}
		if cfg.Allocator != "" {
			opts = append(opts, regalloc.WithAllocator(cfg.Allocator))
		}
		if cacheCap > 0 {
			opts = append(opts, regalloc.WithCache(cacheCap))
		}
		return regalloc.New(opts...)
	}
	// timeOnce measures one pass; fresh != nil rebuilds the engine before
	// every round (cold-cache rows must not warm across rounds).
	timed := func(name string, m *irx.Module, eng *regalloc.Engine, fresh func() (*regalloc.Engine, error), warmups int, row *cacheBenchRow) error {
		for i := 0; i < warmups; i++ {
			if _, err := runOnce(eng, m); err != nil {
				return err
			}
		}
		for round := 0; round < cfg.Rounds; round++ {
			if fresh != nil {
				var err error
				if eng, err = fresh(); err != nil {
					return err
				}
			}
			runtime.GC()
			start := time.Now()
			if _, err := runOnce(eng, m); err != nil {
				return err
			}
			elapsed := time.Since(start)
			n := float64(len(m.Funcs))
			fps := n / elapsed.Seconds()
			if row.FuncsPerSec == 0 || fps > row.FuncsPerSec {
				row.FuncsPerSec = fps
				row.NsPerFunc = float64(elapsed.Nanoseconds()) / n
				s := eng.CacheStats()
				row.Hits, row.Misses = s.Hits, s.Misses
			}
		}
		fmt.Fprintf(out, "  %-28s %9.1f funcs/sec  %8.0f ns/func  (hits %d, misses %d)\n",
			row.Name, row.FuncsPerSec, row.NsPerFunc, row.Hits, row.Misses)
		return nil
	}

	var offDup, coldDup, warmDup, offUniq, coldUniq cacheBenchRow
	offDup = cacheBenchRow{Name: "dup_cache_off", DupRate: cfg.DupRate}
	eng, err := newEng(0)
	if err != nil {
		return err
	}
	if err := timed("dup_cache_off", dupM, eng, nil, 1, &offDup); err != nil {
		return err
	}

	coldDup = cacheBenchRow{Name: "dup_cache_cold", CacheOn: true, DupRate: cfg.DupRate}
	if err := timed("dup_cache_cold", dupM, nil, func() (*regalloc.Engine, error) { return newEng(2 * cfg.Funcs) }, 0, &coldDup); err != nil {
		return err
	}

	warmDup = cacheBenchRow{Name: "dup_cache_warm", CacheOn: true, Warm: true, DupRate: cfg.DupRate}
	if eng, err = newEng(2 * cfg.Funcs); err != nil {
		return err
	}
	// Three passes make every function resident (2Q admits on the second
	// sighting); the measured rounds then serve hits only.
	if err := timed("dup_cache_warm", dupM, eng, nil, 3, &warmDup); err != nil {
		return err
	}

	offUniq = cacheBenchRow{Name: "uniq_cache_off"}
	if eng, err = newEng(0); err != nil {
		return err
	}
	if err := timed("uniq_cache_off", uniqM, eng, nil, 1, &offUniq); err != nil {
		return err
	}

	coldUniq = cacheBenchRow{Name: "uniq_cache_cold", CacheOn: true}
	if err := timed("uniq_cache_cold", uniqM, nil, func() (*regalloc.Engine, error) { return newEng(2 * cfg.Funcs) }, 0, &coldUniq); err != nil {
		return err
	}

	// Incremental recompilation: time a revision with k% of the functions
	// mutated against a full from-scratch allocation of the same module.
	base := workload.GenerateModule(cfg.Seed+2, cfg.Funcs)
	if eng, err = newEng(0); err != nil {
		return err
	}
	ctx := context.Background()
	_, rev, err := eng.AllocateModuleIncremental(ctx, base, nil)
	if err != nil {
		return err
	}
	incrRatio := func(frac float64) (float64, error) {
		changed := int(frac * float64(len(base.Funcs)))
		m2 := &irx.Module{Funcs: append([]*irx.Func(nil), base.Funcs...)}
		for i := 0; i < changed; i++ {
			g := m2.Funcs[i].Clone()
			g.Blocks[0].Instrs[0].Imm += 1000
			m2.Funcs[i] = g
		}
		var full, incr time.Duration
		for round := 0; round < cfg.Rounds; round++ {
			runtime.GC()
			start := time.Now()
			results, err := eng.AllocateModule(ctx, m2)
			if err != nil {
				return 0, err
			}
			if err := regalloc.FirstError(results); err != nil {
				return 0, err
			}
			if d := time.Since(start); full == 0 || d < full {
				full = d
			}
			runtime.GC()
			start = time.Now()
			results, _, err = eng.AllocateModuleIncremental(ctx, m2, rev)
			if err != nil {
				return 0, err
			}
			if err := regalloc.FirstError(results); err != nil {
				return 0, err
			}
			if d := time.Since(start); incr == 0 || d < incr {
				incr = d
			}
		}
		ratio := incr.Seconds() / full.Seconds()
		fmt.Fprintf(out, "  incremental %3.0f%% changed      %.3f of full-run time (%s vs %s)\n",
			frac*100, ratio, incr, full)
		return ratio, nil
	}
	r10, err := incrRatio(0.10)
	if err != nil {
		return err
	}
	r50, err := incrRatio(0.50)
	if err != nil {
		return err
	}

	rep := cacheBenchReport{
		Bench:      "outcome_cache_pr6",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Functions:  cfg.Funcs,
		Seed:       cfg.Seed,
		Registers:  cfg.Registers,
		Allocator:  cfg.Allocator,
		Rounds:     cfg.Rounds,
		DupRate:    cfg.DupRate,
		Configs:    []cacheBenchRow{offDup, coldDup, warmDup, offUniq, coldUniq},

		SpeedupWarmDup:    warmDup.FuncsPerSec / offDup.FuncsPerSec,
		SpeedupColdDup:    coldDup.FuncsPerSec / offDup.FuncsPerSec,
		OverheadUniquePct: (coldUniq.NsPerFunc - offUniq.NsPerFunc) / offUniq.NsPerFunc * 100,
		HitNsPerFunc:      warmDup.NsPerFunc,
		FullNsPerFunc:     offDup.NsPerFunc,
		HitSpeedup:        offDup.NsPerFunc / warmDup.NsPerFunc,
		IncrRatio10:       r10,
		IncrRatio50:       r50,
	}
	fmt.Fprintf(out, "warm cache at %.0f%% duplication: %.2fx module throughput; warm hit %.0f ns/func vs %.0f full (%.1fx); unique-corpus overhead %.2f%%\n",
		cfg.DupRate*100, rep.SpeedupWarmDup, rep.HitNsPerFunc, rep.FullNsPerFunc, rep.HitSpeedup, rep.OverheadUniquePct)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.OutPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", cfg.OutPath)
	return nil
}
