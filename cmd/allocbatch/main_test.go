package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func moduleCorpus(name string) string {
	return filepath.Join("..", "..", "internal", "ir", "testdata", "modules", name)
}

func TestRunModuleFile(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-module", moduleCorpus("mixed.ir"), "-r", "2", "-jobs", "2"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"func looped", "func branchy", "func multidef", "total 3 functions"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunGeneratedModule(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "15", "-seed", "9", "-r", "4", "-jobs", "3", "-print"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "total 15 functions") {
		t.Errorf("missing totals:\n%s", out.String())
	}
}

// TestRunModuleStdinDeterministic: the same module through 1 and 8 workers
// must print identical reports (the CLI-level echo of the pipeline
// determinism guarantee).
func TestRunModuleStdinDeterministic(t *testing.T) {
	src, err := os.ReadFile(moduleCorpus("mixed.ir"))
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := run([]string{"-r", "3", "-jobs", "1", "-print"}, strings.NewReader(string(src)), &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-r", "3", "-jobs", "8", "-print"}, strings.NewReader(string(src)), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("jobs=1 and jobs=8 reports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunJSONL(t *testing.T) {
	in := strings.Join([]string{
		`{"id":"a","ir":"func f ssa {\nb0:\n  x = param 0\n  y = arith x, x\n  ret y\n}","registers":2}`,
		``,
		`{"id":"b","ir":"not ir at all"}`,
		`{"id":"c","ir":"func g ssa {\nb0:\n  x = param 0\n  ret x\n}","allocator":"NL","print":true}`,
	}, "\n") + "\n"
	var out strings.Builder
	if err := run([]string{"-jsonl", "-jobs", "2"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d response lines, want 3:\n%s", len(lines), out.String())
	}
	// Responses come back in request order.
	var resp struct {
		ID        string `json:"id"`
		Func      string `json:"func"`
		Allocator string `json:"allocator"`
		Error     string `json:"error"`
		Rewritten string `json:"rewritten"`
	}
	for i, wantID := range []string{"a", "b", "c"} {
		if err := json.Unmarshal([]byte(lines[i]), &resp); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if resp.ID != wantID {
			t.Fatalf("line %d has id %q, want %q (ordering broken)", i, resp.ID, wantID)
		}
	}
	if err := json.Unmarshal([]byte(lines[1]), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Error("bad IR did not produce an error response")
	}
	if err := json.Unmarshal([]byte(lines[2]), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Allocator != "NL" || resp.Rewritten == "" {
		t.Errorf("request overrides not honoured: %+v", resp)
	}
}

func TestRunBenchSmoke(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	cpuPath := filepath.Join(dir, "cpu.out")
	memPath := filepath.Join(dir, "mem.out")
	var out strings.Builder
	err := run([]string{"-bench", "-funcs", "20", "-rounds", "1", "-out", outPath,
		"-cpuprofile", cpuPath, "-memprofile", memPath}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Bench     string `json:"bench"`
		Functions int    `json:"functions"`
		Configs   []struct {
			Jobs        int     `json:"jobs"`
			FastPath    bool    `json:"fast_path"`
			FuncsPerSec float64 `json:"funcs_per_sec"`
		} `json:"configs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if rep.Functions != 20 || len(rep.Configs) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	fastRows, legacyRows := 0, 0
	for _, c := range rep.Configs {
		if c.FuncsPerSec <= 0 {
			t.Fatalf("non-positive throughput in %+v", c)
		}
		if c.FastPath {
			fastRows++
		} else {
			legacyRows++
		}
	}
	if fastRows == 0 || legacyRows == 0 {
		t.Fatalf("bench must measure both paths, got %d fast / %d legacy rows", fastRows, legacyRows)
	}
	// The pprof flags must produce non-empty profiles.
	for _, p := range []string{cpuPath, memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-module", "missing.ir"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing module file accepted")
	}
	if err := run([]string{"-gen", "3", "-alloc", "bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown allocator accepted")
	}
	if err := run([]string{}, strings.NewReader("not a module"), &out); err == nil {
		t.Error("bad stdin module accepted")
	}
}

// TestAllocHelp: `-alloc help` lists the registered allocator names.
func TestAllocHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alloc", "help"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BFPL") || !strings.Contains(out.String(), "Optimal") {
		t.Errorf("-alloc help output incomplete:\n%s", out.String())
	}
}
