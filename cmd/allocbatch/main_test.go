package main

import (
	"encoding/json"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/regalloc/service"
)

func moduleCorpus(name string) string {
	return filepath.Join("..", "..", "internal", "ir", "testdata", "modules", name)
}

func TestRunModuleFile(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-module", moduleCorpus("mixed.ir"), "-r", "2", "-jobs", "2"}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"func looped", "func branchy", "func multidef", "total 3 functions"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunGeneratedModule(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-gen", "15", "-seed", "9", "-r", "4", "-jobs", "3", "-print"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "total 15 functions") {
		t.Errorf("missing totals:\n%s", out.String())
	}
}

// TestRunModuleStdinDeterministic: the same module through 1 and 8 workers
// must print identical reports (the CLI-level echo of the pipeline
// determinism guarantee).
func TestRunModuleStdinDeterministic(t *testing.T) {
	src, err := os.ReadFile(moduleCorpus("mixed.ir"))
	if err != nil {
		t.Fatal(err)
	}
	var a, b strings.Builder
	if err := run([]string{"-r", "3", "-jobs", "1", "-print"}, strings.NewReader(string(src)), &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-r", "3", "-jobs", "8", "-print"}, strings.NewReader(string(src)), &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("jobs=1 and jobs=8 reports differ:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunJSONL(t *testing.T) {
	in := strings.Join([]string{
		`{"id":"a","ir":"func f ssa {\nb0:\n  x = param 0\n  y = arith x, x\n  ret y\n}","registers":2}`,
		``,
		`{"id":"b","ir":"not ir at all"}`,
		`{"id":"c","ir":"func g ssa {\nb0:\n  x = param 0\n  ret x\n}","allocator":"NL","print":true}`,
	}, "\n") + "\n"
	var out strings.Builder
	if err := run([]string{"-jsonl", "-jobs", "2"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d response lines, want 3:\n%s", len(lines), out.String())
	}
	// Responses come back in request order.
	var resp struct {
		ID        string `json:"id"`
		Func      string `json:"func"`
		Allocator string `json:"allocator"`
		Error     string `json:"error"`
		Rewritten string `json:"rewritten"`
	}
	for i, wantID := range []string{"a", "b", "c"} {
		if err := json.Unmarshal([]byte(lines[i]), &resp); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if resp.ID != wantID {
			t.Fatalf("line %d has id %q, want %q (ordering broken)", i, resp.ID, wantID)
		}
	}
	if err := json.Unmarshal([]byte(lines[1]), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Error == "" {
		t.Error("bad IR did not produce an error response")
	}
	if err := json.Unmarshal([]byte(lines[2]), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Allocator != "NL" || resp.Rewritten == "" {
		t.Errorf("request overrides not honoured: %+v", resp)
	}
}

func TestRunBenchSmoke(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	cpuPath := filepath.Join(dir, "cpu.out")
	memPath := filepath.Join(dir, "mem.out")
	var out strings.Builder
	err := run([]string{"-bench", "-funcs", "20", "-rounds", "1", "-out", outPath,
		"-cpuprofile", cpuPath, "-memprofile", memPath}, strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Bench     string `json:"bench"`
		Functions int    `json:"functions"`
		Configs   []struct {
			Jobs        int     `json:"jobs"`
			FastPath    bool    `json:"fast_path"`
			FuncsPerSec float64 `json:"funcs_per_sec"`
		} `json:"configs"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("bench JSON does not parse: %v", err)
	}
	if rep.Functions != 20 || len(rep.Configs) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	fastRows, legacyRows := 0, 0
	for _, c := range rep.Configs {
		if c.FuncsPerSec <= 0 {
			t.Fatalf("non-positive throughput in %+v", c)
		}
		if c.FastPath {
			fastRows++
		} else {
			legacyRows++
		}
	}
	if fastRows == 0 || legacyRows == 0 {
		t.Fatalf("bench must measure both paths, got %d fast / %d legacy rows", fastRows, legacyRows)
	}
	// The pprof flags must produce non-empty profiles.
	for _, p := range []string{cpuPath, memPath} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile missing: %v", err)
		}
		if st.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-module", "missing.ir"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing module file accepted")
	}
	if err := run([]string{"-gen", "3", "-alloc", "bogus"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown allocator accepted")
	}
	if err := run([]string{}, strings.NewReader("not a module"), &out); err == nil {
		t.Error("bad stdin module accepted")
	}
}

// TestAllocHelp: `-alloc help` lists the registered allocator names.
func TestAllocHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alloc", "help"}, strings.NewReader(""), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BFPL") || !strings.Contains(out.String(), "Optimal") {
		t.Errorf("-alloc help output incomplete:\n%s", out.String())
	}
}

// TestRunBatchWithCache: the -cache flag must not change a byte of the
// report (only append the cache-stats line), and repeated passes inside
// one batch of duplicated functions produce hits.
func TestRunBatchWithCache(t *testing.T) {
	args := func(extra ...string) []string {
		return append([]string{"-gen", "30", "-seed", "4", "-r", "4", "-jobs", "2", "-print"}, extra...)
	}
	var off, on strings.Builder
	if err := run(args(), strings.NewReader(""), &off); err != nil {
		t.Fatal(err)
	}
	if err := run(args("-cache", "256"), strings.NewReader(""), &on); err != nil {
		t.Fatal(err)
	}
	onText := on.String()
	i := strings.Index(onText, "cache: ")
	if i < 0 {
		t.Fatalf("-cache run did not print the cache stats line:\n%s", onText)
	}
	if onText[:i] != off.String() {
		t.Fatal("-cache changed the report bytes before the stats line")
	}
}

// TestRunJSONLStatsAndCache: a shared -cache across JSONL requests serves
// the third sighting of a body (under a different name) from the cache,
// and a "stats":true request reports the engine table and cache counters.
func TestRunJSONLStatsAndCache(t *testing.T) {
	body := `func %s ssa {\nb0:\n  x = param 0\n  y = arith x, x\n  ret y\n}`
	mk := func(id, name string) string {
		return `{"id":"` + id + `","ir":"` + strings.ReplaceAll(body, "%s", name) + `","registers":3}`
	}
	in := strings.Join([]string{
		mk("1", "alpha"),
		mk("2", "beta"),
		mk("3", "gamma"),
		`{"id":"4","stats":true}`,
	}, "\n") + "\n"
	var out strings.Builder
	// jobs=1 keeps request processing sequential, so the hit count is exact.
	if err := run([]string{"-jsonl", "-jobs", "1", "-cache", "64"}, strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d response lines, want 4:\n%s", len(lines), out.String())
	}
	var funcResp struct {
		Func       string         `json:"func"`
		Assignment map[string]int `json:"assignment"`
		Error      string         `json:"error"`
	}
	var want string
	for i, name := range []string{"alpha", "beta", "gamma"} {
		if err := json.Unmarshal([]byte(lines[i]), &funcResp); err != nil {
			t.Fatal(err)
		}
		if funcResp.Error != "" || funcResp.Func != name {
			t.Fatalf("line %d: %+v", i, funcResp)
		}
		got, _ := json.Marshal(funcResp.Assignment)
		if i == 0 {
			want = string(got)
		} else if string(got) != want {
			t.Fatalf("cached response %d assignment differs: %s vs %s", i, got, want)
		}
	}
	var statsResp struct {
		ID    string `json:"id"`
		Stats *struct {
			Engines        int    `json:"engines"`
			EngineCapacity int    `json:"engineCapacity"`
			CacheHits      uint64 `json:"cacheHits"`
			CacheMisses    uint64 `json:"cacheMisses"`
			CacheEntries   int    `json:"cacheEntries"`
			CacheCapacity  int    `json:"cacheCapacity"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(lines[3]), &statsResp); err != nil {
		t.Fatal(err)
	}
	s := statsResp.Stats
	if s == nil {
		t.Fatalf("stats request returned no stats payload: %s", lines[3])
	}
	if s.Engines != 1 || s.EngineCapacity != service.EngineCacheCap {
		t.Errorf("engine table stats wrong: %+v", s)
	}
	// alpha: miss (ghost), beta: miss (admit), gamma: hit.
	if s.CacheHits != 1 || s.CacheMisses != 2 || s.CacheEntries != 1 {
		t.Errorf("cache counters = %+v, want 1 hit / 2 misses / 1 entry", s)
	}
	if s.CacheCapacity != 64 {
		t.Errorf("cache capacity = %d, want 64", s.CacheCapacity)
	}
}

// lineReader hands runJSONL one request line per Read call and counts how
// many it has emitted, so a test can observe exactly how far intake got.
type lineReader struct {
	line    string
	total   int
	emitted atomic.Int64
}

func (r *lineReader) Read(p []byte) (int, error) {
	n := int(r.emitted.Load())
	if n >= r.total {
		return 0, io.EOF
	}
	if len(p) < len(r.line) {
		return 0, io.ErrShortBuffer
	}
	r.emitted.Add(1)
	return copy(p, r.line), nil
}

// failWriter fails every Write and counts the attempts.
type failWriter struct{ writes atomic.Int64 }

var errSinkClosed = errors.New("sink closed")

func (w *failWriter) Write(p []byte) (int, error) {
	w.writes.Add(1)
	return 0, errSinkClosed
}

// TestRunJSONLWriterErrorStopsIntake: once a response fails to encode
// (closed stdout, broken pipe), the service must stop consuming stdin and
// stop encoding into the dead sink instead of parsing and allocating the
// whole remaining stream; the write error surfaces as the run error.
func TestRunJSONLWriterErrorStopsIntake(t *testing.T) {
	const total = 400
	in := &lineReader{
		line:  `{"id":"x","ir":"func f ssa {\nb0:\n  x = param 0\n  y = arith x, x\n  ret y\n}","registers":2}` + "\n",
		total: total,
	}
	sink := &failWriter{}
	err := runJSONL(in, sink, 4, "", "", "", 2, 0)
	if !errors.Is(err, errSinkClosed) {
		t.Fatalf("run error = %v, want the writer's error", err)
	}
	if got := sink.writes.Load(); got != 1 {
		t.Errorf("writer saw %d encode attempts after failing, want exactly 1", got)
	}
	if got := in.emitted.Load(); got >= total/2 {
		t.Errorf("intake consumed %d of %d lines after the sink died, want an early stop", got, total)
	}
}

// TestRunCacheBenchSmoke: the -cachebench mode writes a parseable
// BENCH_cache.json with positive throughputs and sane ratios.
func TestRunCacheBenchSmoke(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "cache.json")
	var out strings.Builder
	err := run([]string{"-cachebench", "-funcs", "40", "-rounds", "1", "-dup", "0.8", "-out", outPath},
		strings.NewReader(""), &out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Bench   string `json:"bench"`
		Configs []struct {
			Name        string  `json:"name"`
			FuncsPerSec float64 `json:"funcs_per_sec"`
		} `json:"configs"`
		SpeedupWarm float64 `json:"speedup_warm_cache_dup_vs_off"`
		HitSpeedup  float64 `json:"hit_speedup_vs_full_alloc"`
		Incr10      float64 `json:"incremental_time_ratio_10pct_changed"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("cache bench JSON does not parse: %v", err)
	}
	if rep.Bench != "outcome_cache_pr6" || len(rep.Configs) != 5 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	for _, c := range rep.Configs {
		if c.FuncsPerSec <= 0 {
			t.Fatalf("non-positive throughput in %+v", c)
		}
	}
	if rep.SpeedupWarm <= 0 || rep.HitSpeedup <= 0 || rep.Incr10 <= 0 {
		t.Fatalf("ratios missing from report: %+v", rep)
	}
}
