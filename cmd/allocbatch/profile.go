package main

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// startProfiles begins CPU profiling when cpuPath is non-empty and returns a
// stop function that ends it and, when memPath is non-empty, writes an
// allocation profile. Used by the bench mode so hot-path regressions are
// diagnosable straight from the benchmark binary:
//
//	allocbatch -bench -cpuprofile cpu.out -memprofile mem.out
//	go tool pprof cpu.out
func startProfiles(cpuPath string) (stop func(memPath string) error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("bench: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("bench: -cpuprofile: %w", err)
		}
	}
	return func(memPath string) error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("bench: -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the final heap state
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				return fmt.Errorf("bench: -memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
