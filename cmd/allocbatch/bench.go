package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/ir"
	"repro/internal/irgen"
	"repro/internal/pipeline"
)

// The throughput benchmark measures the batch pipeline end to end:
// functions/second over a generated module at several worker counts, and
// the allocation profile per function with and without per-worker scratch
// reuse. It writes a machine-readable JSON report (BENCH_pr3.json in CI)
// so the repository's perf trajectory is tracked in data, not prose.

type benchConfig struct {
	Funcs     int
	Seed      int64
	Registers int
	Allocator string
	Rounds    int
	OutPath   string
}

// benchRow is one measured configuration.
type benchRow struct {
	Jobs          int     `json:"jobs"`
	ScratchReuse  bool    `json:"scratch_reuse"`
	FuncsPerSec   float64 `json:"funcs_per_sec"`
	NsPerFunc     float64 `json:"ns_per_func"`
	AllocsPerFunc float64 `json:"allocs_per_func"`
	BytesPerFunc  float64 `json:"bytes_per_func"`
}

// benchReport is the BENCH_pr3.json schema. Speedups are quoted against
// the pre-batch baseline (jobs=1, no scratch reuse — exactly what a caller
// looping over core.Run got before the pipeline existed) and, for
// transparency, against jobs=1 with reuse.
type benchReport struct {
	Bench                   string     `json:"bench"`
	GoVersion               string     `json:"go"`
	CPUs                    int        `json:"cpus"`
	GOMAXPROCS              int        `json:"gomaxprocs"`
	Functions               int        `json:"functions"`
	Seed                    int64      `json:"seed"`
	Registers               int        `json:"registers"`
	Allocator               string     `json:"allocator"`
	Rounds                  int        `json:"rounds"`
	Configs                 []benchRow `json:"configs"`
	Baseline                string     `json:"baseline"`
	Speedup4Workers         float64    `json:"speedup_at_4_workers"`
	Speedup4WorkersNoReuse  float64    `json:"speedup_at_4_workers_vs_jobs1_same_reuse"`
	AllocsReductionReuse    float64    `json:"allocs_reduction_from_scratch_reuse"`
	BytesReductionReuse     float64    `json:"bytes_reduction_from_scratch_reuse"`
	NsPerFuncReductionReuse float64    `json:"ns_per_func_reduction_from_scratch_reuse"`
}

func runBench(out io.Writer, cfg benchConfig) error {
	if cfg.Funcs < 1 {
		return fmt.Errorf("bench: -funcs must be ≥ 1")
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	m := irgen.GenerateModule(cfg.Seed, cfg.Funcs)
	fmt.Fprintf(out, "bench: module of %d functions (seed %d), R=%d, %d rounds per config\n",
		cfg.Funcs, cfg.Seed, cfg.Registers, cfg.Rounds)

	type key struct {
		jobs  int
		reuse bool
	}
	configs := []key{
		{1, false}, {4, false},
		{1, true}, {2, true}, {4, true}, {8, true}, {16, true},
	}
	rows := make([]benchRow, 0, len(configs))
	byKey := make(map[key]benchRow, len(configs))
	for _, k := range configs {
		pcfg := pipeline.Config{
			Registers: cfg.Registers, Allocator: cfg.Allocator,
			Jobs: k.jobs, NoScratchReuse: !k.reuse,
		}
		// Warm-up: fault in code paths and steady-state the heap.
		if _, err := runOnce(m, pcfg); err != nil {
			return err
		}
		best := benchRow{Jobs: k.jobs, ScratchReuse: k.reuse}
		for round := 0; round < cfg.Rounds; round++ {
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if _, err := runOnce(m, pcfg); err != nil {
				return err
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			n := float64(cfg.Funcs)
			row := benchRow{
				Jobs: k.jobs, ScratchReuse: k.reuse,
				FuncsPerSec:   n / elapsed.Seconds(),
				NsPerFunc:     float64(elapsed.Nanoseconds()) / n,
				AllocsPerFunc: float64(after.Mallocs-before.Mallocs) / n,
				BytesPerFunc:  float64(after.TotalAlloc-before.TotalAlloc) / n,
			}
			if best.FuncsPerSec == 0 || row.FuncsPerSec > best.FuncsPerSec {
				best = row
			}
		}
		rows = append(rows, best)
		byKey[k] = best
		fmt.Fprintf(out, "  jobs=%-2d reuse=%-5v  %9.1f funcs/sec  %8.0f ns/func  %7.1f allocs/func  %8.0f B/func\n",
			k.jobs, k.reuse, best.FuncsPerSec, best.NsPerFunc, best.AllocsPerFunc, best.BytesPerFunc)
	}

	base := byKey[key{1, false}]
	rep := benchReport{
		Bench:      "module_batch_throughput_pr3",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Functions:  cfg.Funcs,
		Seed:       cfg.Seed,
		Registers:  cfg.Registers,
		Allocator:  cfg.Allocator,
		Rounds:     cfg.Rounds,
		Configs:    rows,
		Baseline:   "jobs=1 scratch_reuse=false (pre-pipeline behaviour: one core.Run per function)",
	}
	if base.FuncsPerSec > 0 {
		rep.Speedup4Workers = byKey[key{4, true}].FuncsPerSec / base.FuncsPerSec
	}
	if r1 := byKey[key{1, true}]; r1.FuncsPerSec > 0 {
		rep.Speedup4WorkersNoReuse = byKey[key{4, true}].FuncsPerSec / r1.FuncsPerSec
	}
	if r1 := byKey[key{1, true}]; r1.AllocsPerFunc > 0 {
		rep.AllocsReductionReuse = base.AllocsPerFunc / r1.AllocsPerFunc
		rep.BytesReductionReuse = base.BytesPerFunc / r1.BytesPerFunc
		rep.NsPerFuncReductionReuse = base.NsPerFunc / r1.NsPerFunc
	}
	fmt.Fprintf(out, "speedup at 4 workers vs baseline: %.2fx; allocs/func reduction from scratch reuse: %.2fx\n",
		rep.Speedup4Workers, rep.AllocsReductionReuse)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.OutPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", cfg.OutPath)
	return nil
}

// runOnce is one timed batch pass; any per-function failure aborts the
// benchmark (the generated corpus must allocate cleanly).
func runOnce(m *ir.Module, cfg pipeline.Config) ([]pipeline.FuncResult, error) {
	results, err := pipeline.RunModule(m, cfg)
	if err != nil {
		return nil, err
	}
	if err := pipeline.FirstErr(results); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return results, nil
}
