package main

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/workload"
)

// The throughput benchmark measures the batch pipeline end to end:
// functions/second over a generated module at several worker counts, the
// allocation profile per function with and without per-worker scratch
// reuse, and — since PR 4 — the IFG-free fast path against the legacy
// explicit-interference-graph path. It writes a machine-readable JSON
// report (BENCH_pr4.json in CI) so the repository's perf trajectory is
// tracked in data, not prose.

type benchConfig struct {
	Funcs      int
	Seed       int64
	Registers  int
	Allocator  string
	Rounds     int
	OutPath    string
	CPUProfile string
	MemProfile string
}

// benchRow is one measured configuration.
type benchRow struct {
	Jobs          int     `json:"jobs"`
	ScratchReuse  bool    `json:"scratch_reuse"`
	FastPath      bool    `json:"fast_path"`
	FuncsPerSec   float64 `json:"funcs_per_sec"`
	NsPerFunc     float64 `json:"ns_per_func"`
	AllocsPerFunc float64 `json:"allocs_per_func"`
	BytesPerFunc  float64 `json:"bytes_per_func"`
}

// benchReport is the BENCH_pr4.json schema. The headline ratios compare the
// IFG-free fast path against the legacy explicit-graph path at jobs=1 with
// scratch reuse — the PR-3 steady-state configuration — measured in the
// same process on the same workload.
type benchReport struct {
	Bench      string     `json:"bench"`
	GoVersion  string     `json:"go"`
	CPUs       int        `json:"cpus"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Functions  int        `json:"functions"`
	Seed       int64      `json:"seed"`
	Registers  int        `json:"registers"`
	Allocator  string     `json:"allocator"`
	Rounds     int        `json:"rounds"`
	Configs    []benchRow `json:"configs"`
	Baseline   string     `json:"baseline"`
	// Fast path vs legacy IFG path, both at jobs=1 + scratch reuse.
	SpeedupFastPath       float64 `json:"speedup_fast_path_vs_legacy"`
	AllocsReductionFast   float64 `json:"allocs_reduction_fast_path_vs_legacy"`
	BytesReductionFast    float64 `json:"bytes_reduction_fast_path_vs_legacy"`
	NsPerFuncReductionFast float64 `json:"ns_per_func_reduction_fast_path_vs_legacy"`
	// Scratch reuse ablation on the fast path (jobs=1).
	AllocsReductionReuse float64 `json:"allocs_reduction_from_scratch_reuse"`
	BytesReductionReuse  float64 `json:"bytes_reduction_from_scratch_reuse"`
	// Parallel scaling on the fast path.
	Speedup4Workers float64 `json:"speedup_at_4_workers_vs_jobs1"`
}

func runBench(out io.Writer, cfg benchConfig) error {
	if cfg.Funcs < 1 {
		return fmt.Errorf("bench: -funcs must be ≥ 1")
	}
	if cfg.Rounds < 1 {
		cfg.Rounds = 1
	}
	m := workload.GenerateModule(cfg.Seed, cfg.Funcs)
	fmt.Fprintf(out, "bench: module of %d functions (seed %d), R=%d, %d rounds per config\n",
		cfg.Funcs, cfg.Seed, cfg.Registers, cfg.Rounds)

	type key struct {
		jobs   int
		reuse  bool
		legacy bool
	}
	configs := []key{
		{1, true, true}, // legacy IFG path: the PR-3 configuration
		{1, false, false},
		{1, true, false},
		{2, true, false},
		{4, true, false},
		{8, true, false},
		{16, true, false},
	}
	rows := make([]benchRow, 0, len(configs))
	byKey := make(map[key]benchRow, len(configs))
	stopProfiles, err := startProfiles(cfg.CPUProfile)
	if err != nil {
		return err
	}
	for _, k := range configs {
		eopts := []regalloc.Option{
			regalloc.WithRegisters(cfg.Registers), regalloc.WithJobs(k.jobs),
		}
		if cfg.Allocator != "" {
			eopts = append(eopts, regalloc.WithAllocator(cfg.Allocator))
		}
		if !k.reuse {
			eopts = append(eopts, regalloc.WithoutScratchReuse())
		}
		if k.legacy {
			eopts = append(eopts, regalloc.WithLegacyIFG())
		}
		eng, err := regalloc.New(eopts...)
		if err != nil {
			return err
		}
		// Warm-up: fault in code paths and steady-state the heap.
		if _, err := runOnce(eng, m); err != nil {
			return err
		}
		best := benchRow{Jobs: k.jobs, ScratchReuse: k.reuse, FastPath: !k.legacy}
		for round := 0; round < cfg.Rounds; round++ {
			runtime.GC()
			var before, after runtime.MemStats
			runtime.ReadMemStats(&before)
			start := time.Now()
			if _, err := runOnce(eng, m); err != nil {
				return err
			}
			elapsed := time.Since(start)
			runtime.ReadMemStats(&after)
			n := float64(cfg.Funcs)
			row := benchRow{
				Jobs: k.jobs, ScratchReuse: k.reuse, FastPath: !k.legacy,
				FuncsPerSec:   n / elapsed.Seconds(),
				NsPerFunc:     float64(elapsed.Nanoseconds()) / n,
				AllocsPerFunc: float64(after.Mallocs-before.Mallocs) / n,
				BytesPerFunc:  float64(after.TotalAlloc-before.TotalAlloc) / n,
			}
			if best.FuncsPerSec == 0 || row.FuncsPerSec > best.FuncsPerSec {
				best = row
			}
		}
		rows = append(rows, best)
		byKey[k] = best
		fmt.Fprintf(out, "  jobs=%-2d reuse=%-5v fast=%-5v  %9.1f funcs/sec  %8.0f ns/func  %7.1f allocs/func  %8.0f B/func\n",
			k.jobs, k.reuse, !k.legacy, best.FuncsPerSec, best.NsPerFunc, best.AllocsPerFunc, best.BytesPerFunc)
	}
	if err := stopProfiles(cfg.MemProfile); err != nil {
		return err
	}

	rep := benchReport{
		Bench:      "module_batch_throughput_pr4",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Functions:  cfg.Funcs,
		Seed:       cfg.Seed,
		Registers:  cfg.Registers,
		Allocator:  cfg.Allocator,
		Rounds:     cfg.Rounds,
		Configs:    rows,
		Baseline:   "jobs=1 scratch_reuse=true fast_path=false (the PR-3 steady-state configuration: legacy explicit-IFG pipeline)",
	}
	legacy := byKey[key{1, true, true}]
	fast := byKey[key{1, true, false}]
	if legacy.FuncsPerSec > 0 && fast.FuncsPerSec > 0 {
		rep.SpeedupFastPath = fast.FuncsPerSec / legacy.FuncsPerSec
		rep.AllocsReductionFast = legacy.AllocsPerFunc / fast.AllocsPerFunc
		rep.BytesReductionFast = legacy.BytesPerFunc / fast.BytesPerFunc
		rep.NsPerFuncReductionFast = legacy.NsPerFunc / fast.NsPerFunc
	}
	if noReuse := byKey[key{1, false, false}]; fast.AllocsPerFunc > 0 && noReuse.AllocsPerFunc > 0 {
		rep.AllocsReductionReuse = noReuse.AllocsPerFunc / fast.AllocsPerFunc
		rep.BytesReductionReuse = noReuse.BytesPerFunc / fast.BytesPerFunc
	}
	if fast.FuncsPerSec > 0 {
		rep.Speedup4Workers = byKey[key{4, true, false}].FuncsPerSec / fast.FuncsPerSec
	}
	fmt.Fprintf(out, "fast path vs legacy IFG (jobs=1, reuse): %.2fx funcs/sec, %.2fx fewer allocs/func, %.2fx fewer bytes/func\n",
		rep.SpeedupFastPath, rep.AllocsReductionFast, rep.BytesReductionFast)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(cfg.OutPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", cfg.OutPath)
	return nil
}

// runOnce is one timed batch pass; any per-function failure aborts the
// benchmark (the generated corpus must allocate cleanly).
func runOnce(eng *regalloc.Engine, m *irx.Module) ([]regalloc.FuncResult, error) {
	results, err := eng.AllocateModule(context.Background(), m)
	if err != nil {
		return nil, err
	}
	if err := regalloc.FirstError(results); err != nil {
		return nil, fmt.Errorf("bench: %w", err)
	}
	return results, nil
}
