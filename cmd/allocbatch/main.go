// Command allocbatch is the module-level batch front-end of the allocator:
// it fans the functions of a compilation unit out over the regalloc
// engine's worker pool and reports the allocation decisions per function.
//
// Modes:
//
//	allocbatch -r 4 -alloc BFPL -jobs 4 -module m.ir        # batch a module file
//	allocbatch -r 4 -gen 500 -seed 7                        # batch a generated module
//	allocbatch -jsonl -jobs 8                               # JSONL request/response service
//	allocbatch -bench -funcs 800 -out BENCH_pr4.json        # throughput benchmark
//
// In JSONL mode every stdin line is one request and every stdout line one
// response, emitted in request order, so the tool can be driven as a
// service by any line-oriented client:
//
//	{"id":"1","ir":"func f ssa { ... }","registers":4,"allocator":"BFPL","print":true}
//	{"id":"1","func":"f","allocator":"BFPL","registers":4,"values":9,"maxlive":3,
//	 "spilled":["a"],"spillCost":12.5,"assignment":{"b":0},"rewritten":"func f ssa {...}"}
//
// Requests may omit registers/allocator to inherit the command-line
// defaults; failures come back as {"id":..., "error": "..."} without
// stopping the stream. `-alloc help` lists the registered allocator names.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "allocbatch:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("allocbatch", flag.ContinueOnError)
	regs := fs.Int("r", 4, "register count")
	allocName := fs.String("alloc", "", "allocator name, or 'help' to list (default BFPL/LH)")
	jobs := fs.Int("jobs", 0, "worker count (0 = GOMAXPROCS)")
	module := fs.String("module", "", "textual IR module file ('-' = stdin)")
	gen := fs.Int("gen", 0, "generate a module of this many functions instead of reading one")
	seed := fs.Int64("seed", 1, "generator seed for -gen and -bench")
	print := fs.Bool("print", false, "per-function detail: assignment and rewritten body")
	jsonl := fs.Bool("jsonl", false, "JSONL service mode: one request per stdin line, one response per stdout line")
	bench := fs.Bool("bench", false, "run the module-throughput benchmark")
	funcs := fs.Int("funcs", 800, "benchmark module size (with -bench)")
	rounds := fs.Int("rounds", 3, "benchmark repetitions per configuration, best kept (with -bench)")
	benchOut := fs.String("out", "BENCH_pr4.json", "benchmark JSON output path (with -bench)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the benchmark to this file (with -bench)")
	memProfile := fs.String("memprofile", "", "write an allocation profile of the benchmark to this file (with -bench)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *allocName == "help" {
		fmt.Fprintln(out, strings.Join(regalloc.Allocators(), "\n"))
		return nil
	}

	switch {
	case *bench:
		return runBench(out, benchConfig{
			Funcs: *funcs, Seed: *seed, Registers: *regs, Allocator: *allocName,
			Rounds: *rounds, OutPath: *benchOut,
			CPUProfile: *cpuProfile, MemProfile: *memProfile,
		})
	case *jsonl:
		return runJSONL(in, out, *regs, *allocName, *jobs)
	default:
		m, err := loadModule(*module, *gen, *seed, in)
		if err != nil {
			return err
		}
		return runBatch(out, m, *regs, *allocName, *jobs, *print)
	}
}

func loadModule(path string, gen int, seed int64, in io.Reader) (*irx.Module, error) {
	if gen > 0 {
		return workload.GenerateModule(seed, gen), nil
	}
	var src []byte
	var err error
	if path == "" || path == "-" {
		src, err = io.ReadAll(in)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return irx.ParseModule(string(src))
}

// newEngine assembles the engine for one (registers, allocator, jobs)
// configuration; shared by the batch and JSONL modes.
func newEngine(regs int, allocName string, jobs int) (*regalloc.Engine, error) {
	opts := []regalloc.Option{regalloc.WithRegisters(regs), regalloc.WithJobs(jobs)}
	if allocName != "" {
		opts = append(opts, regalloc.WithAllocator(allocName))
	}
	return regalloc.New(opts...)
}

func runBatch(out io.Writer, m *irx.Module, regs int, allocName string, jobs int, detail bool) error {
	eng, err := newEngine(regs, allocName, jobs)
	if err != nil {
		return err
	}
	results, err := eng.AllocateModule(context.Background(), m)
	if err != nil {
		return err
	}
	fmt.Fprint(out, regalloc.FormatResults(results, detail))
	t := regalloc.Summarize(results)
	fmt.Fprintf(out, "total %d functions, %d spilled values (cost %.1f), %d errors\n",
		t.Funcs, t.Spilled, t.SpillCost, t.Errors)
	if t.Errors > 0 {
		return fmt.Errorf("%d of %d functions failed", t.Errors, t.Funcs)
	}
	return nil
}

// ------------------------------------------------------------- JSONL mode

// request is one JSONL line in. Registers/Allocator default to the
// command-line flags when omitted.
type request struct {
	ID        string `json:"id"`
	IR        string `json:"ir"`
	Registers int    `json:"registers"`
	Allocator string `json:"allocator"`
	Print     bool   `json:"print"`
}

// response is one JSONL line out, in request order.
type response struct {
	ID         string         `json:"id,omitempty"`
	Func       string         `json:"func,omitempty"`
	Allocator  string         `json:"allocator,omitempty"`
	Registers  int            `json:"registers,omitempty"`
	Values     int            `json:"values,omitempty"`
	MaxLive    int            `json:"maxlive,omitempty"`
	Spilled    []string       `json:"spilled,omitempty"`
	SpillCost  float64        `json:"spillCost"`
	Assignment map[string]int `json:"assignment,omitempty"`
	Rewritten  string         `json:"rewritten,omitempty"`
	Error      string         `json:"error,omitempty"`
}

// engineCache resolves one shared engine per (registers, allocator)
// request configuration; engines pool their analysis scratch internally,
// so the JSONL workers just share them.
type engineCache struct {
	mu sync.Mutex
	m  map[string]*regalloc.Engine
}

func (c *engineCache) get(regs int, allocName string) (*regalloc.Engine, error) {
	key := fmt.Sprintf("%d\x00%s", regs, strings.ToLower(allocName))
	c.mu.Lock()
	defer c.mu.Unlock()
	if eng, ok := c.m[key]; ok {
		return eng, nil
	}
	eng, err := newEngine(regs, allocName, 0)
	if err != nil {
		return nil, err
	}
	if c.m == nil {
		c.m = make(map[string]*regalloc.Engine)
	}
	c.m[key] = eng
	return eng, nil
}

// runJSONL streams requests through a fixed worker pool and emits
// responses in request order with a bounded in-flight window.
func runJSONL(in io.Reader, out io.Writer, defRegs int, defAlloc string, jobs int) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	type slot struct {
		req  request
		err  error // request decode error
		done chan response
	}
	work := make(chan *slot)
	pending := make(chan *slot, jobs*4)

	var writeErr error
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		enc := json.NewEncoder(out)
		for s := range pending {
			if err := enc.Encode(<-s.done); err != nil && writeErr == nil {
				writeErr = err
			}
		}
	}()

	engines := &engineCache{}
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				s.done <- serve(engines, s.req, s.err, defRegs, defAlloc)
			}
		}()
	}

	// bufio.Reader rather than a Scanner: a Scanner's line cap would kill
	// the whole stream on one oversized request, breaking the
	// errors-are-per-request contract.
	br := bufio.NewReaderSize(in, 1<<20)
	var readErr error
	for {
		line, err := br.ReadString('\n')
		if trimmed := strings.TrimSpace(line); trimmed != "" {
			s := &slot{done: make(chan response, 1)}
			s.err = json.Unmarshal([]byte(trimmed), &s.req)
			pending <- s
			work <- s
		}
		if err != nil {
			if err != io.EOF {
				readErr = err
			}
			break
		}
	}
	close(work)
	wg.Wait()
	close(pending)
	<-writerDone
	if readErr != nil {
		return readErr
	}
	return writeErr
}

// serve handles one JSONL request on one worker.
func serve(engines *engineCache, req request, decodeErr error, defRegs int, defAlloc string) response {
	resp := response{ID: req.ID}
	if decodeErr != nil {
		resp.Error = "bad request: " + decodeErr.Error()
		return resp
	}
	r := req.Registers
	if r == 0 {
		r = defRegs
	}
	allocName := req.Allocator
	if allocName == "" {
		allocName = defAlloc
	}
	resp.Registers = r
	eng, err := engines.get(r, allocName)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	f, err := irx.Parse(req.IR)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	resp.Func = f.Name
	out, err := eng.AllocateFunc(context.Background(), f)
	if err != nil {
		resp.Error = err.Error()
		return resp
	}
	resp.Allocator = out.Result.Allocator
	resp.Values = out.Problem.N()
	resp.MaxLive = out.MaxLive
	resp.SpillCost = out.SpillCost
	for _, v := range out.SpilledValues {
		resp.Spilled = append(resp.Spilled, f.NameOf(v))
	}
	sort.Strings(resp.Spilled)
	if out.RegisterOf != nil {
		resp.Assignment = make(map[string]int)
		for val, reg := range out.RegisterOf {
			if reg >= 0 {
				resp.Assignment[f.NameOf(val)] = reg
			}
		}
	}
	if req.Print && out.Rewritten != nil {
		resp.Rewritten = out.Rewritten.String()
	}
	return resp
}
