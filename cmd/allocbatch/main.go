// Command allocbatch is the module-level batch front-end of the allocator:
// it fans the functions of a compilation unit out over the regalloc
// engine's worker pool and reports the allocation decisions per function.
//
// Modes:
//
//	allocbatch -r 4 -alloc BFPL -jobs 4 -module m.ir        # batch a module file
//	allocbatch -r 4 -gen 500 -seed 7                        # batch a generated module
//	allocbatch -r 4 -gen 500 -cache 1024                    # batch with the outcome cache
//	allocbatch -jsonl -jobs 8 -cache 4096                   # JSONL service, shared outcome cache
//	allocbatch -bench -funcs 800 -out BENCH_pr4.json        # throughput benchmark
//	allocbatch -cachebench -funcs 400 -dup 0.8              # outcome-cache benchmark (BENCH_cache.json)
//
// In JSONL mode every stdin line is one request and every stdout line one
// response, emitted in request order, so the tool can be driven as a
// service by any line-oriented client:
//
//	{"id":"1","ir":"func f ssa { ... }","registers":4,"allocator":"BFPL","print":true}
//	{"id":"1","func":"f","allocator":"BFPL","registers":4,"values":9,"maxlive":3,
//	 "spilled":["a"],"spillCost":12.5,"assignment":{"b":0},"rewritten":"func f ssa {...}"}
//
// Requests may omit registers/allocator to inherit the command-line
// defaults; failures come back as {"id":..., "error": "..."} without
// stopping the stream. `-alloc help` lists the registered allocator names.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"sync"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/service"
	"repro/regalloc/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "allocbatch:", err)
		os.Exit(1)
	}
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("allocbatch", flag.ContinueOnError)
	regs := fs.Int("r", 4, "register count")
	allocName := fs.String("alloc", "", "allocator name, or 'help' to list (default BFPL/LH)")
	machine := fs.String("machine", "", "target machine name for machine-constrained allocation, or 'help' to list (default unconstrained)")
	coalesceName := fs.String("coalesce", "", "coalescing policy: off, aggressive, conservative (default off)")
	jobs := fs.Int("jobs", 0, "worker count (0 = GOMAXPROCS)")
	module := fs.String("module", "", "textual IR module file ('-' = stdin)")
	gen := fs.Int("gen", 0, "generate a module of this many functions instead of reading one")
	seed := fs.Int64("seed", 1, "generator seed for -gen and -bench")
	print := fs.Bool("print", false, "per-function detail: assignment and rewritten body")
	jsonl := fs.Bool("jsonl", false, "JSONL service mode: one request per stdin line, one response per stdout line")
	cacheSize := fs.Int("cache", 0, "outcome-cache capacity in entries (0 = off); batch mode gets a private cache, JSONL mode one cache shared across request configurations")
	bench := fs.Bool("bench", false, "run the module-throughput benchmark")
	cacheBench := fs.Bool("cachebench", false, "run the outcome-cache benchmark over duplication-controlled corpora")
	dup := fs.Float64("dup", 0.8, "duplication rate of the redundant corpus (with -cachebench)")
	funcs := fs.Int("funcs", 800, "benchmark module size (with -bench)")
	rounds := fs.Int("rounds", 3, "benchmark repetitions per configuration, best kept (with -bench)")
	benchOut := fs.String("out", "BENCH_pr4.json", "benchmark JSON output path (with -bench)")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile of the benchmark to this file (with -bench)")
	memProfile := fs.String("memprofile", "", "write an allocation profile of the benchmark to this file (with -bench)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *allocName == "help" {
		fmt.Fprintln(out, strings.Join(regalloc.Allocators(), "\n"))
		return nil
	}
	if *machine == "help" {
		fmt.Fprintln(out, strings.Join(regalloc.MachineNames(), "\n"))
		return nil
	}

	switch {
	case *cacheBench:
		outPath := *benchOut
		if outPath == "BENCH_pr4.json" { // untouched default: separate artifact
			outPath = "BENCH_cache.json"
		}
		return runCacheBench(out, cacheBenchConfig{
			Funcs: *funcs, Seed: *seed, Registers: *regs, Allocator: *allocName,
			Rounds: *rounds, DupRate: *dup, OutPath: outPath,
		})
	case *bench:
		return runBench(out, benchConfig{
			Funcs: *funcs, Seed: *seed, Registers: *regs, Allocator: *allocName,
			Rounds: *rounds, OutPath: *benchOut,
			CPUProfile: *cpuProfile, MemProfile: *memProfile,
		})
	case *jsonl:
		return runJSONL(in, out, *regs, *allocName, *machine, *coalesceName, *jobs, *cacheSize)
	default:
		m, err := loadModule(*module, *gen, *seed, in)
		if err != nil {
			return err
		}
		return runBatch(out, m, *regs, *allocName, *machine, *coalesceName, *jobs, *print, *cacheSize)
	}
}

func loadModule(path string, gen int, seed int64, in io.Reader) (*irx.Module, error) {
	if gen > 0 {
		return workload.GenerateModule(seed, gen), nil
	}
	var src []byte
	var err error
	if path == "" || path == "-" {
		src, err = io.ReadAll(in)
	} else {
		src, err = os.ReadFile(path)
	}
	if err != nil {
		return nil, err
	}
	return irx.ParseModule(string(src))
}

// newEngine assembles the engine for one (registers, allocator, machine,
// coalescing, jobs) configuration; shared by the batch and JSONL modes. A
// non-nil shared cache attaches to the engine; cacheSize > 0 gives it a
// private one.
func newEngine(regs int, allocName, machine, coalesceName string, jobs, cacheSize int, shared *regalloc.Cache) (*regalloc.Engine, error) {
	opts := []regalloc.Option{regalloc.WithRegisters(regs), regalloc.WithJobs(jobs)}
	if allocName != "" {
		opts = append(opts, regalloc.WithAllocator(allocName))
	}
	if machine != "" {
		opts = append(opts, regalloc.WithMachine(machine))
	}
	if coalesceName != "" {
		pol, err := regalloc.CoalescePolicyByName(coalesceName)
		if err != nil {
			return nil, err
		}
		opts = append(opts, regalloc.WithCoalescing(pol))
	}
	switch {
	case shared != nil:
		opts = append(opts, regalloc.WithSharedCache(shared))
	case cacheSize > 0:
		opts = append(opts, regalloc.WithCache(cacheSize))
	}
	return regalloc.New(opts...)
}

func runBatch(out io.Writer, m *irx.Module, regs int, allocName, machine, coalesceName string, jobs int, detail bool, cacheSize int) error {
	eng, err := newEngine(regs, allocName, machine, coalesceName, jobs, cacheSize, nil)
	if err != nil {
		return err
	}
	results, err := eng.AllocateModule(context.Background(), m)
	if err != nil {
		return err
	}
	fmt.Fprint(out, regalloc.FormatResults(results, detail))
	t := regalloc.Summarize(results)
	fmt.Fprintf(out, "total %d functions, %d spilled values (cost %.1f), %d errors\n",
		t.Funcs, t.Spilled, t.SpillCost, t.Errors)
	if cacheSize > 0 {
		s := eng.CacheStats()
		fmt.Fprintf(out, "cache: %d hits, %d misses, %d resident entries (capacity %d), %d evicted\n",
			s.Hits, s.Misses, s.Entries, s.Capacity, s.Evicted)
	}
	if t.Errors > 0 {
		return fmt.Errorf("%d of %d functions failed", t.Errors, t.Funcs)
	}
	return nil
}

// ------------------------------------------------------------- JSONL mode

// The request/response schema, the bounded per-configuration engine table
// and the single-request serving logic live in regalloc/service, shared
// verbatim with the HTTP allocation server (cmd/allocserve).

// runJSONL streams requests through a fixed worker pool and emits
// responses in request order with a bounded in-flight window. With
// cacheSize > 0 every engine shares one outcome cache, so repeated
// function bodies — even under different names or from different request
// configurations — cost a fingerprint plus a copy after the first runs.
//
// The first response-encoding failure (closed stdout, broken pipe) stops
// intake promptly: the reader stops consuming stdin and the pool drains
// what is already in flight without allocating into a dead sink; runJSONL
// then returns that write error.
func runJSONL(in io.Reader, out io.Writer, defRegs int, defAlloc, defMachine, defCoalesce string, jobs, cacheSize int) error {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	type slot struct {
		req  service.Request
		err  error // request decode error
		done chan service.Response
	}
	// Both queues are buffered so intake, the workers and the ordered
	// writer only serialize on genuine capacity, not on every handoff.
	work := make(chan *slot, jobs*4)
	pending := make(chan *slot, jobs*4)

	var writeErr error
	writeFailed := make(chan struct{}) // closed on the first encode error
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		enc := json.NewEncoder(out)
		for s := range pending {
			resp := <-s.done
			if writeErr != nil {
				continue // keep draining, stop encoding into a dead sink
			}
			if err := enc.Encode(resp); err != nil {
				writeErr = err
				close(writeFailed)
			}
		}
	}()

	var shared *regalloc.Cache
	if cacheSize > 0 {
		shared = regalloc.NewCache(cacheSize)
	}
	engines := service.NewEngineCache(shared, 0)
	var wg sync.WaitGroup
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for s := range work {
				s.done <- service.Do(context.Background(), engines, s.req, s.err, defRegs, defAlloc, defMachine, defCoalesce, nil)
			}
		}()
	}

	// bufio.Reader rather than a Scanner: a Scanner's line cap would kill
	// the whole stream on one oversized request, breaking the
	// errors-are-per-request contract.
	br := bufio.NewReaderSize(in, 1<<20)
	var readErr error
intake:
	for {
		select {
		case <-writeFailed:
			// No response can reach the client anymore; parsing and
			// allocating the rest of stdin would be pure waste.
			break intake
		default:
		}
		line, err := br.ReadString('\n')
		if trimmed := strings.TrimSpace(line); trimmed != "" {
			s := &slot{done: make(chan service.Response, 1)}
			s.err = json.Unmarshal([]byte(trimmed), &s.req)
			pending <- s
			work <- s
		}
		if err != nil {
			if err != io.EOF {
				readErr = err
			}
			break
		}
	}
	close(work)
	wg.Wait()
	close(pending)
	<-writerDone
	if readErr != nil {
		return readErr
	}
	return writeErr
}
