// Command graphtool inspects the interference graph of a program: summary
// statistics (size, density, MaxLive, chordality), the maximal cliques /
// live sets, and an optional Graphviz DOT dump with spill costs as labels.
//
// Usage:
//
//	graphtool (-file f.ir | -suite eembc -prog aifir) [-dot] [-cliques]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/spillcost"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphtool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphtool", flag.ContinueOnError)
	file := fs.String("file", "", "textual IR file ('-' or empty = stdin)")
	suiteName := fs.String("suite", "", "take the program from this workload suite")
	progName := fs.String("prog", "", "program name within -suite")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	cliques := fs.Bool("cliques", false, "list the pressure constraints (live sets)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	f, err := loadFunc(*file, *suiteName, *progName)
	if err != nil {
		return err
	}
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	info := liveness.Compute(f)
	b := ifg.FromLiveness(info)
	costs := spillcost.Costs(f, spillcost.DefaultModel)

	if *dot {
		emitDOT(out, b, costs)
		return nil
	}

	order := b.Graph.PerfectEliminationOrder()
	chordal := b.Graph.IsPerfectEliminationOrder(order)
	fmt.Fprintf(out, "function  %s (ssa=%v)\n", f.Name, f.SSA)
	fmt.Fprintf(out, "blocks    %d\n", len(f.Blocks))
	fmt.Fprintf(out, "vertices  %d\n", b.Graph.N())
	fmt.Fprintf(out, "edges     %d\n", b.Graph.M())
	fmt.Fprintf(out, "maxlive   %d\n", b.MaxLive)
	fmt.Fprintf(out, "chordal   %v\n", chordal)
	if chordal {
		fmt.Fprintf(out, "cliques   %d (max size %d)\n",
			len(b.Graph.MaximalCliques(order)), b.Graph.CliqueNumber(order))
	} else {
		fmt.Fprintf(out, "live sets %d\n", len(b.LiveSets))
	}
	if *cliques {
		fmt.Fprintln(out, "pressure constraints:")
		sets := b.LiveSets
		if chordal && f.SSA {
			sets = b.Graph.MaximalCliques(order)
		}
		for _, ls := range sets {
			fmt.Fprintf(out, "  {%s}\n", strings.Join(b.Names(ls), " "))
		}
	}
	return nil
}

func emitDOT(out io.Writer, b *ifg.Build, costs []float64) {
	fmt.Fprintln(out, "graph interference {")
	fmt.Fprintln(out, "  node [shape=ellipse];")
	for v := 0; v < b.Graph.N(); v++ {
		val := b.ValueOf[v]
		fmt.Fprintf(out, "  n%d [label=\"%s\\n%.0f\"];\n", v, b.F.NameOf(val), costs[val])
	}
	for v := 0; v < b.Graph.N(); v++ {
		for _, u := range b.Graph.Neighbors(v) {
			if u > v {
				fmt.Fprintf(out, "  n%d -- n%d;\n", v, u)
			}
		}
	}
	fmt.Fprintln(out, "}")
}

func loadFunc(file, suiteName, progName string) (*ir.Func, error) {
	if suiteName != "" {
		s, ok := bench.SuiteByName(suiteName)
		if !ok {
			return nil, fmt.Errorf("unknown suite %q", suiteName)
		}
		for _, p := range s.Load() {
			if p.Name == progName {
				return p.F, nil
			}
		}
		return nil, fmt.Errorf("no program %q in suite %q", progName, suiteName)
	}
	var src []byte
	var err error
	if file == "" || file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	return ir.Parse(string(src))
}
