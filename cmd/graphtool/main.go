// Command graphtool inspects the interference graph of a program: summary
// statistics (size, density, MaxLive, chordality), the maximal cliques /
// live sets, and an optional Graphviz DOT dump with spill costs as labels.
//
// Usage:
//
//	graphtool (-file f.ir | -suite eembc -prog aifir) [-dot] [-cliques]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/bench"
	"repro/internal/ifg"
	"repro/internal/ir"
	"repro/internal/liveness"
	"repro/internal/spillcost"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "graphtool:", err)
		os.Exit(1)
	}
}

func run() error {
	file := flag.String("file", "", "textual IR file ('-' or empty = stdin)")
	suiteName := flag.String("suite", "", "take the program from this workload suite")
	progName := flag.String("prog", "", "program name within -suite")
	dot := flag.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	cliques := flag.Bool("cliques", false, "list the pressure constraints (live sets)")
	flag.Parse()

	f, err := loadFunc(*file, *suiteName, *progName)
	if err != nil {
		return err
	}
	dom := f.ComputeDominance()
	f.ComputeLoops(dom)
	info := liveness.Compute(f)
	b := ifg.FromLiveness(info)
	costs := spillcost.Costs(f, spillcost.DefaultModel)

	if *dot {
		emitDOT(b, costs)
		return nil
	}

	order := b.Graph.PerfectEliminationOrder()
	chordal := b.Graph.IsPerfectEliminationOrder(order)
	fmt.Printf("function  %s (ssa=%v)\n", f.Name, f.SSA)
	fmt.Printf("blocks    %d\n", len(f.Blocks))
	fmt.Printf("vertices  %d\n", b.Graph.N())
	fmt.Printf("edges     %d\n", b.Graph.M())
	fmt.Printf("maxlive   %d\n", b.MaxLive)
	fmt.Printf("chordal   %v\n", chordal)
	if chordal {
		fmt.Printf("cliques   %d (max size %d)\n",
			len(b.Graph.MaximalCliques(order)), b.Graph.CliqueNumber(order))
	} else {
		fmt.Printf("live sets %d\n", len(b.LiveSets))
	}
	if *cliques {
		fmt.Println("pressure constraints:")
		sets := b.LiveSets
		if chordal && f.SSA {
			sets = b.Graph.MaximalCliques(order)
		}
		for _, ls := range sets {
			fmt.Printf("  {%s}\n", strings.Join(b.Names(ls), " "))
		}
	}
	return nil
}

func emitDOT(b *ifg.Build, costs []float64) {
	fmt.Println("graph interference {")
	fmt.Println("  node [shape=ellipse];")
	for v := 0; v < b.Graph.N(); v++ {
		val := b.ValueOf[v]
		fmt.Printf("  n%d [label=\"%s\\n%.0f\"];\n", v, b.F.NameOf(val), costs[val])
	}
	for v := 0; v < b.Graph.N(); v++ {
		for _, u := range b.Graph.Neighbors(v) {
			if u > v {
				fmt.Printf("  n%d -- n%d;\n", v, u)
			}
		}
	}
	fmt.Println("}")
}

func loadFunc(file, suiteName, progName string) (*ir.Func, error) {
	if suiteName != "" {
		s, ok := bench.SuiteByName(suiteName)
		if !ok {
			return nil, fmt.Errorf("unknown suite %q", suiteName)
		}
		for _, p := range s.Load() {
			if p.Name == progName {
				return p.F, nil
			}
		}
		return nil, fmt.Errorf("no program %q in suite %q", progName, suiteName)
	}
	var src []byte
	var err error
	if file == "" || file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	return ir.Parse(string(src))
}
