// Command graphtool inspects the interference graph of a program: summary
// statistics (size, density, MaxLive, chordality), the maximal cliques /
// live sets, and an optional Graphviz DOT dump with spill costs as labels.
//
// Usage:
//
//	graphtool (-file f.ir | -suite eembc -prog aifir) [-dot] [-cliques]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "graphtool:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("graphtool", flag.ContinueOnError)
	file := fs.String("file", "", "textual IR file ('-' or empty = stdin)")
	suiteName := fs.String("suite", "", "take the program from this workload suite")
	progName := fs.String("prog", "", "program name within -suite")
	dot := fs.Bool("dot", false, "emit Graphviz DOT instead of statistics")
	cliques := fs.Bool("cliques", false, "list the pressure constraints (live sets)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	f, err := loadFunc(*file, *suiteName, *progName)
	if err != nil {
		return err
	}
	ins, err := regalloc.Inspect(f)
	if err != nil {
		return err
	}

	if *dot {
		return ins.WriteDOT(out)
	}

	fmt.Fprintf(out, "function  %s (ssa=%v)\n", f.Name, f.SSA)
	fmt.Fprintf(out, "blocks    %d\n", len(f.Blocks))
	fmt.Fprintf(out, "vertices  %d\n", ins.Vertices)
	fmt.Fprintf(out, "edges     %d\n", ins.Edges)
	fmt.Fprintf(out, "maxlive   %d\n", ins.MaxLive)
	fmt.Fprintf(out, "chordal   %v\n", ins.Chordal)
	if ins.Chordal {
		fmt.Fprintf(out, "cliques   %d (max size %d)\n", ins.CliqueCount, ins.CliqueNumber)
	} else {
		fmt.Fprintf(out, "live sets %d\n", len(ins.PressureSets))
	}
	if *cliques {
		fmt.Fprintln(out, "pressure constraints:")
		for _, ls := range ins.PressureSets {
			fmt.Fprintf(out, "  {%s}\n", strings.Join(ls, " "))
		}
	}
	return nil
}

func loadFunc(file, suiteName, progName string) (*irx.Func, error) {
	if suiteName != "" {
		s, ok := workload.SuiteByName(suiteName)
		if !ok {
			return nil, fmt.Errorf("unknown suite %q", suiteName)
		}
		for _, p := range s.Load() {
			if p.Name == progName {
				return p.F, nil
			}
		}
		return nil, fmt.Errorf("no program %q in suite %q", progName, suiteName)
	}
	var src []byte
	var err error
	if file == "" || file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	return irx.Parse(string(src))
}
