package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func corpus(name string) string {
	return filepath.Join("..", "..", "internal", "ir", "testdata", name)
}

func TestRunStats(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-file", corpus("nested.ir"), "-cliques"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"function  nested", "vertices", "edges", "maxlive", "chordal   true", "pressure constraints:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestRunDOT(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-file", corpus("diamond.ir"), "-dot"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.HasPrefix(text, "graph interference {") || !strings.Contains(text, "--") {
		t.Errorf("not a DOT graph:\n%s", text)
	}
}

// TestRunDeterminism: two runs over the same input must print identical
// bytes (the repo-wide determinism guarantee at the CLI surface).
func TestRunDeterminism(t *testing.T) {
	var a, b strings.Builder
	if err := run([]string{"-file", corpus("nested.ir"), "-cliques"}, &a); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-file", corpus("nested.ir"), "-cliques"}, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("nondeterministic output across runs")
	}
}

func TestRunRejectsMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-file", "nope.ir"}, &out); err == nil {
		t.Error("missing file accepted")
	}
}
