package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/service"
	"repro/regalloc/workload"
)

// The self-benchmark is the multi-core scaling rig ROADMAP item 1 asks
// for: it sweeps the worker-pool size (jobs = 1, 2, 4, 8) over the module
// pipeline in-process, then sweeps client concurrency (1, 2, 4, 8) against
// a live HTTP server end to end, and writes both curves plus a generated
// contention analysis to a machine-readable JSON report (BENCH_pr7.json).
// Every BENCH before PR 7 ran in a 1-CPU container, so the pool's scaling
// curve was literally unmeasured; this rig makes the sweep a one-command
// artifact on any machine (and a CI job runs it on a multi-vCPU runner).

type benchOpts struct {
	Funcs     int
	Seed      int64
	Registers int
	Allocator string
	Rounds    int
	OutPath   string
	Config    service.Config
}

// pipelineRow is one worker-pool configuration of the in-process sweep.
type pipelineRow struct {
	Jobs          int     `json:"jobs"`
	FuncsPerSec   float64 `json:"funcs_per_sec"`
	NsPerFunc     float64 `json:"ns_per_func"`
	SpeedupVs1    float64 `json:"speedup_vs_jobs1"`
}

// serverRow is one client-concurrency configuration of the HTTP sweep.
type serverRow struct {
	Clients     int     `json:"clients"`
	ReqsPerSec  float64 `json:"reqs_per_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	SpeedupVs1  float64 `json:"speedup_vs_clients1"`
}

// scalingReport is the BENCH_pr7.json schema.
type scalingReport struct {
	Bench      string        `json:"bench"`
	GoVersion  string        `json:"go"`
	CPUs       int           `json:"cpus"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Functions  int           `json:"functions"`
	Seed       int64         `json:"seed"`
	Registers  int           `json:"registers"`
	Allocator  string        `json:"allocator"`
	Rounds     int           `json:"rounds"`
	Pipeline   []pipelineRow `json:"pipeline"`
	Server     []serverRow   `json:"server"`
	// Headline scaling ratios.
	SpeedupJobs4    float64 `json:"speedup_at_jobs4_vs_jobs1"`
	SpeedupClients4 float64 `json:"speedup_at_clients4_vs_clients1"`
	Analysis        string  `json:"analysis"`
}

var sweep = []int{1, 2, 4, 8}

func runSelfBench(out io.Writer, opts benchOpts) error {
	if opts.Funcs < 1 {
		return fmt.Errorf("selfbench: -funcs must be ≥ 1")
	}
	if opts.Rounds < 1 {
		opts.Rounds = 1
	}
	m := workload.GenerateModule(opts.Seed, opts.Funcs)
	fmt.Fprintf(out, "selfbench: %d functions (seed %d), R=%d, %d rounds, NumCPU=%d GOMAXPROCS=%d\n",
		opts.Funcs, opts.Seed, opts.Registers, opts.Rounds, runtime.NumCPU(), runtime.GOMAXPROCS(0))

	// --- In-process worker-pool sweep -----------------------------------
	var pipeRows []pipelineRow
	for _, jobs := range sweep {
		eopts := []regalloc.Option{regalloc.WithRegisters(opts.Registers), regalloc.WithJobs(jobs)}
		if opts.Allocator != "" {
			eopts = append(eopts, regalloc.WithAllocator(opts.Allocator))
		}
		eng, err := regalloc.New(eopts...)
		if err != nil {
			return err
		}
		if err := benchRunOnce(eng, m); err != nil { // warm-up
			return err
		}
		best := 0.0
		for round := 0; round < opts.Rounds; round++ {
			runtime.GC()
			start := time.Now()
			if err := benchRunOnce(eng, m); err != nil {
				return err
			}
			if fps := float64(opts.Funcs) / time.Since(start).Seconds(); fps > best {
				best = fps
			}
		}
		row := pipelineRow{Jobs: jobs, FuncsPerSec: best, NsPerFunc: 1e9 / best}
		if len(pipeRows) > 0 {
			row.SpeedupVs1 = best / pipeRows[0].FuncsPerSec
		} else {
			row.SpeedupVs1 = 1
		}
		pipeRows = append(pipeRows, row)
		fmt.Fprintf(out, "  pipeline jobs=%-2d %9.1f funcs/sec  (%.2fx vs jobs=1)\n", jobs, best, row.SpeedupVs1)
	}

	// --- End-to-end HTTP sweep ------------------------------------------
	cfg := opts.Config
	cfg.MaxInFlight = 1024 // the sweep measures throughput, not admission
	cfg.CacheSize = 0      // cold allocations: cache hits would hide pool scaling
	cfg.Jobs = 1           // single-function requests; parallelism comes from clients
	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	addr, done, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return err
	}
	url := "http://" + addr.String() + "/v1/allocate"
	bodies := make([][]byte, len(m.Funcs))
	for i, f := range m.Funcs {
		b, err := json.Marshal(service.Request{ID: f.Name, IR: f.String()})
		if err != nil {
			return err
		}
		bodies[i] = b
	}
	transport := &http.Transport{MaxIdleConns: 64, MaxIdleConnsPerHost: 64}
	client := &http.Client{Transport: transport, Timeout: 60 * time.Second}

	var srvRows []serverRow
	for _, clients := range sweep {
		var best serverRow
		for round := 0; round < opts.Rounds; round++ {
			row, err := httpRound(client, url, bodies, clients)
			if err != nil {
				return err
			}
			if row.ReqsPerSec > best.ReqsPerSec {
				best = row
			}
		}
		if len(srvRows) > 0 {
			best.SpeedupVs1 = best.ReqsPerSec / srvRows[0].ReqsPerSec
		} else {
			best.SpeedupVs1 = 1
		}
		srvRows = append(srvRows, best)
		fmt.Fprintf(out, "  server clients=%-2d %9.1f reqs/sec  p50=%.2fms p99=%.2fms (%.2fx vs clients=1)\n",
			best.Clients, best.ReqsPerSec, best.P50Ms, best.P99Ms, best.SpeedupVs1)
	}
	if err := srv.Drain(context.Background()); err != nil {
		return err
	}
	<-done

	rep := scalingReport{
		Bench:      "allocserve_scaling_pr7",
		GoVersion:  runtime.Version(),
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Functions:  opts.Funcs,
		Seed:       opts.Seed,
		Registers:  opts.Registers,
		Allocator:  opts.Allocator,
		Rounds:     opts.Rounds,
		Pipeline:   pipeRows,
		Server:     srvRows,
	}
	for _, r := range pipeRows {
		if r.Jobs == 4 {
			rep.SpeedupJobs4 = r.SpeedupVs1
		}
	}
	for _, r := range srvRows {
		if r.Clients == 4 {
			rep.SpeedupClients4 = r.SpeedupVs1
		}
	}
	rep.Analysis = analysis(rep)
	fmt.Fprintf(out, "jobs=4 vs jobs=1: %.2fx | clients=4 vs clients=1: %.2fx\n", rep.SpeedupJobs4, rep.SpeedupClients4)
	fmt.Fprintf(out, "analysis: %s\n", rep.Analysis)

	data, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(opts.OutPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "wrote %s\n", opts.OutPath)
	return nil
}

// analysis generates the scaling verdict the BENCH file documents: honest
// about the rig it ran on.
func analysis(rep scalingReport) string {
	if rep.CPUs <= 1 {
		return fmt.Sprintf("single-CPU rig (NumCPU=%d): the sweep cannot exceed 1.0x by construction — worker-pool "+
			"parallelism has no cores to run on, so jobs=4 at %.2fx of jobs=1 measures pure overhead, not contention. "+
			"The structural serialization points named by the roadmap are addressed regardless: module workers claim "+
			"functions from a lock-free atomic counter and write results to disjoint slice slots (no work channel, no "+
			"result lock), the streaming result-ordering barrier now uses a module-sized buffered notify channel so a "+
			"slow consumer back-pressures emission rather than the pool, and the JSONL front-end's work queue is "+
			"buffered. Re-run `allocserve -selfbench` on a multi-core machine (the CI multicore job does) for the real curve.",
			rep.CPUs, rep.SpeedupJobs4)
	}
	verdict := "near-linear"
	switch {
	case rep.SpeedupJobs4 < 1.5:
		verdict = "sub-linear (below the 1.5x acceptance bar — profile the pool handoff)"
	case rep.SpeedupJobs4 < 3:
		verdict = "moderate"
	}
	return fmt.Sprintf("multi-core rig (NumCPU=%d): jobs=4 reaches %.2fx of jobs=1 (%s), clients=4 reaches %.2fx "+
		"end to end over HTTP. Workers claim functions from a lock-free atomic counter into disjoint result slots; "+
		"the ordering barrier is buffered; remaining ceilings are GC and the h2c connection handling.",
		rep.CPUs, rep.SpeedupJobs4, verdict, rep.SpeedupClients4)
}

func benchRunOnce(eng *regalloc.Engine, m *irx.Module) error {
	results, err := eng.AllocateModule(context.Background(), m)
	if err != nil {
		return err
	}
	return regalloc.FirstError(results)
}

// httpRound fires every request body once, spread over `clients` concurrent
// goroutines, and reports throughput and client-observed latency quantiles.
func httpRound(client *http.Client, url string, bodies [][]byte, clients int) (serverRow, error) {
	latencies := make([][]time.Duration, clients)
	errs := make([]error, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(bodies); i += clients {
				t0 := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					errs[c] = err
					return
				}
				var r service.Response
				err = json.NewDecoder(resp.Body).Decode(&r)
				resp.Body.Close()
				if err != nil {
					errs[c] = err
					return
				}
				if r.Error != "" {
					errs[c] = fmt.Errorf("request %s: %s", r.ID, r.Error)
					return
				}
				latencies[c] = append(latencies[c], time.Since(t0))
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return serverRow{}, err
		}
	}
	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	q := func(p float64) float64 {
		if len(all) == 0 {
			return 0
		}
		i := int(p * float64(len(all)-1))
		return float64(all[i].Microseconds()) / 1000
	}
	return serverRow{
		Clients:    clients,
		ReqsPerSec: float64(len(bodies)) / elapsed.Seconds(),
		P50Ms:      q(0.5),
		P99Ms:      q(0.99),
	}, nil
}
