// Command allocserve runs the register allocator as a long-lived network
// service: HTTP/1.1 + h2c (cleartext HTTP/2), stdlib-only.
//
//	allocserve -addr :8080 -r 4 -alloc BFPL -cache 4096
//	allocserve -addr :8080 -max-inflight 256 -timeout 10s
//	allocserve -selfbench -funcs 800 -out BENCH_pr7.json   # scaling sweep
//
// Endpoints:
//
//	POST /v1/allocate   one JSON request (the allocbatch JSONL schema:
//	                    "ir" for a single function or "module" for a
//	                    compilation unit), one JSON response
//	GET  /metrics       Prometheus text metrics
//	GET  /healthz       liveness: 200 while the process serves at all
//	GET  /readyz        readiness: 503 while draining or saturated
//
// Admission is bounded: at most -max-inflight requests are served
// concurrently and the rest are rejected immediately with 429 +
// Retry-After. Every request runs under the -timeout deadline. On SIGTERM
// or SIGINT the server drains gracefully: it stops accepting (/readyz
// flips to 503, /healthz stays 200), finishes the in-flight requests
// (bounded by -drain-timeout) and flushes a final metrics snapshot to
// stdout.
//
// Resource governance: -budget-steps, -budget-deadline, -max-values and
// -max-blocks bound every allocation's work; with -degrade, over-budget
// functions are served from the degradation ladder (the response carries
// the rung under "degraded") instead of failing:
//
//	allocserve -budget-steps 2000000 -budget-deadline 50ms -degrade
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/regalloc"
	"repro/regalloc/service"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "allocserve:", err)
		os.Exit(1)
	}
}

// run is the testable entry point. A non-nil ready channel receives the
// bound listen address once the server accepts connections (tests use it
// to race-freely learn the port of addr ":0").
func run(args []string, out io.Writer, ready chan<- string) error {
	fs := flag.NewFlagSet("allocserve", flag.ContinueOnError)
	addr := fs.String("addr", ":8080", "listen address")
	regs := fs.Int("r", 4, "default register count for requests that omit one")
	allocName := fs.String("alloc", "", "default allocator name, or 'help' to list (default BFPL/LH)")
	machine := fs.String("machine", "", "default target machine for machine-constrained allocation, or 'help' to list (default unconstrained)")
	coalesceName := fs.String("coalesce", "", "default coalescing policy: off, aggressive, conservative (default off)")
	jobs := fs.Int("jobs", 0, "worker count for module requests (0 = GOMAXPROCS)")
	cacheSize := fs.Int("cache", 0, "outcome-cache capacity in entries, shared across request configurations (0 = off)")
	maxInFlight := fs.Int("max-inflight", service.DefaultMaxInFlight, "admission bound: concurrent requests beyond it get 429")
	timeout := fs.Duration("timeout", service.DefaultRequestTimeout, "per-request allocation deadline (negative = none)")
	drainTimeout := fs.Duration("drain-timeout", service.DefaultDrainTimeout, "graceful-drain bound for in-flight requests on SIGTERM")
	budgetSteps := fs.Int64("budget-steps", 0, "per-function work-step budget (0 = unbounded)")
	budgetDeadline := fs.Duration("budget-deadline", 0, "per-function wall-clock allocation deadline (0 = none)")
	maxValues := fs.Int("max-values", 0, "admission gate: reject/degrade functions above this value count (0 = none)")
	maxBlocks := fs.Int("max-blocks", 0, "admission gate: reject/degrade functions above this block count (0 = none)")
	degrade := fs.Bool("degrade", false, "serve over-budget functions from the degradation ladder instead of failing them")
	selfbench := fs.Bool("selfbench", false, "run the multi-core scaling sweep (jobs and client concurrency 1,2,4,8) and exit")
	funcs := fs.Int("funcs", 800, "benchmark module size (with -selfbench)")
	seed := fs.Int64("seed", 42, "benchmark corpus seed (with -selfbench)")
	rounds := fs.Int("rounds", 3, "benchmark repetitions per configuration, best kept (with -selfbench)")
	benchOut := fs.String("out", "BENCH_pr7.json", "benchmark JSON output path (with -selfbench)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *allocName == "help" {
		fmt.Fprintln(out, strings.Join(regalloc.Allocators(), "\n"))
		return nil
	}
	if *machine == "help" {
		fmt.Fprintln(out, strings.Join(regalloc.MachineNames(), "\n"))
		return nil
	}
	cfg := service.Config{
		Registers:      *regs,
		Allocator:      *allocName,
		Machine:        *machine,
		Coalesce:       *coalesceName,
		Jobs:           *jobs,
		CacheSize:      *cacheSize,
		MaxInFlight:    *maxInFlight,
		RequestTimeout: *timeout,
		DrainTimeout:   *drainTimeout,
		Budget: regalloc.Budget{
			Steps:     *budgetSteps,
			Deadline:  *budgetDeadline,
			MaxValues: *maxValues,
			MaxBlocks: *maxBlocks,
		},
		Degrade: *degrade,
	}
	if *selfbench {
		return runSelfBench(out, benchOpts{
			Funcs: *funcs, Seed: *seed, Registers: *regs, Allocator: *allocName,
			Rounds: *rounds, OutPath: *benchOut, Config: cfg,
		})
	}

	srv, err := service.New(cfg)
	if err != nil {
		return err
	}
	bound, done, err := srv.ListenAndServe(*addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "allocserve: listening on %s (R=%d alloc=%s max-inflight=%d timeout=%v cache=%d)\n",
		bound, *regs, defaultName(*allocName), *maxInFlight, *timeout, *cacheSize)
	if ready != nil {
		ready <- bound.String()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case err := <-done:
		return err
	case got := <-sig:
		fmt.Fprintf(out, "allocserve: received %v, draining (bound %v)\n", got, *drainTimeout)
		start := time.Now()
		drainErr := srv.Drain(context.Background())
		<-done
		if drainErr != nil {
			fmt.Fprintf(out, "allocserve: drain incomplete after %v: %v\n", time.Since(start).Round(time.Millisecond), drainErr)
		} else {
			fmt.Fprintf(out, "allocserve: drained in %v\n", time.Since(start).Round(time.Millisecond))
		}
		// Final metrics flush: the last scrape a collector would have seen,
		// plus whatever the drain window finished.
		fmt.Fprint(out, srv.MetricsText())
		return drainErr
	}
}

func defaultName(name string) string {
	if name == "" {
		return "default"
	}
	return name
}
