package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/regalloc/service"
)

const tinyFunc = "func f ssa {\nb0:\n  x = param 0\n  y = arith x, x\n  ret y\n}"

// syncBuffer lets the server goroutine log while the test reads.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestRunServeAndDrain boots the real command loop, serves one allocation
// and one metrics scrape over HTTP, then drains it with a SIGTERM — the
// full lifecycle a deployment sees.
func TestRunServeAndDrain(t *testing.T) {
	ready := make(chan string, 1)
	out := &syncBuffer{}
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-r", "3", "-cache", "64"}, out, ready)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	body, err := json.Marshal(service.Request{ID: "t", IR: tinyFunc})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/v1/allocate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var r service.Response
	err = json.NewDecoder(resp.Body).Decode(&r)
	resp.Body.Close()
	if err != nil || r.Error != "" || r.Func != "f" {
		t.Fatalf("allocate response: %+v (decode err %v)", r, err)
	}

	mresp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), `allocserve_requests_total{code="200"} 1`) {
		t.Errorf("metrics scrape missing the served request:\n%s", mbody)
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("drain exit: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("SIGTERM did not drain the server")
	}
	text := out.String()
	if !strings.Contains(text, "draining") || !strings.Contains(text, "drained in") {
		t.Errorf("drain lifecycle not logged:\n%s", text)
	}
	// The final metrics flush lands on stdout after the drain.
	if !strings.Contains(text, "allocserve_requests_total") {
		t.Errorf("final metrics flush missing:\n%s", text)
	}
}

func TestRunAllocHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alloc", "help"}, &out, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "BFPL") {
		t.Errorf("-alloc help incomplete:\n%s", out.String())
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alloc", "bogus", "-addr", "127.0.0.1:0"}, &out, nil); err == nil {
		t.Error("unknown allocator accepted")
	}
}

// TestRunSelfBenchSmoke: the scaling rig must produce a parseable report
// with both sweeps, the headline ratios and a non-empty analysis.
func TestRunSelfBenchSmoke(t *testing.T) {
	dir := t.TempDir()
	outPath := filepath.Join(dir, "bench.json")
	var out syncBuffer
	err := run([]string{"-selfbench", "-funcs", "12", "-rounds", "1", "-seed", "7", "-out", outPath}, &out, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Bench    string `json:"bench"`
		CPUs     int    `json:"cpus"`
		Pipeline []struct {
			Jobs        int     `json:"jobs"`
			FuncsPerSec float64 `json:"funcs_per_sec"`
		} `json:"pipeline"`
		Server []struct {
			Clients    int     `json:"clients"`
			ReqsPerSec float64 `json:"reqs_per_sec"`
			P99Ms      float64 `json:"p99_ms"`
		} `json:"server"`
		SpeedupJobs4 float64 `json:"speedup_at_jobs4_vs_jobs1"`
		Analysis     string  `json:"analysis"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("scaling report does not parse: %v", err)
	}
	if rep.Bench != "allocserve_scaling_pr7" || len(rep.Pipeline) != 4 || len(rep.Server) != 4 {
		t.Fatalf("unexpected report shape: %+v", rep)
	}
	for _, row := range rep.Pipeline {
		if row.FuncsPerSec <= 0 {
			t.Fatalf("non-positive pipeline throughput: %+v", row)
		}
	}
	for _, row := range rep.Server {
		if row.ReqsPerSec <= 0 || row.P99Ms <= 0 {
			t.Fatalf("non-positive server throughput: %+v", row)
		}
	}
	if rep.SpeedupJobs4 <= 0 || rep.Analysis == "" {
		t.Fatalf("headline ratios or analysis missing: %+v", rep)
	}
}
