package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func corpus(name string) string {
	return filepath.Join("..", "..", "internal", "ir", "testdata", name)
}

func TestRunSSAFile(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-file", corpus("loop.ir"), "-r", "2", "-print"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"function   loop", "allocator  ", "registers  2", "maxlive", "spilled"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// -print on an SSA input must show the rewritten function.
	if !strings.Contains(text, "func loop ssa {") {
		t.Errorf("-print did not emit the rewritten function:\n%s", text)
	}
}

func TestRunNonSSAAllocator(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-file", corpus("redef.ir"), "-r", "2", "-alloc", "LH"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "allocator  LH") {
		t.Errorf("LH not reported:\n%s", out.String())
	}
}

func TestRunSuiteProgram(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-suite", "eembc", "-prog", "aifir", "-r", "4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "function   aifir") {
		t.Errorf("suite program not loaded:\n%s", out.String())
	}
}

func TestRunErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-file", "does-not-exist.ir"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-file", corpus("loop.ir"), "-alloc", "bogus"}, &out); err == nil {
		t.Error("unknown allocator accepted")
	}
	if err := run([]string{"-file", corpus("loop.ir"), "-arch", "bogus"}, &out); err == nil {
		t.Error("unknown arch accepted")
	}
}

// TestAllocHelp: `-alloc help` lists the registered allocator names,
// sorted, one per line — the registry-backed discovery satellite.
func TestAllocHelp(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-alloc", "help"}, &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	for _, want := range []string{"BFPL", "LH", "Optimal"} {
		found := false
		for _, l := range lines {
			if l == want {
				found = true
			}
		}
		if !found {
			t.Errorf("-alloc help missing %s:\n%s", want, out.String())
		}
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] >= lines[i] {
			t.Fatalf("-alloc help not sorted: %v", lines)
		}
	}
}
