// Command layered runs one register allocation end to end and reports the
// decisions: which values spill, the spill cost, and (for SSA inputs) the
// assigned registers and the rewritten function with spill code.
//
// Usage:
//
//	layered -r 8 [-alloc BFPL] [-arch st231] (-file f.ir | -suite eembc -prog aifir) [-print]
//
// The input is either a textual IR file (see internal/ir's format) or a
// named program from one of the built-in workload suites. With no -file and
// no -suite, it reads IR from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/arch"
	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/ir"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "layered:", err)
		os.Exit(1)
	}
}

func run() error {
	regs := flag.Int("r", 0, "register count (default: the -arch register file)")
	allocName := flag.String("alloc", "", "allocator: "+strings.Join(core.AllocatorNames(), ", ")+" (default BFPL/LH)")
	machine := flag.String("arch", "st231", "machine for the default register count (st231, armv7, jvm98)")
	file := flag.String("file", "", "textual IR file to allocate ('-' or empty = stdin)")
	suiteName := flag.String("suite", "", "take the program from this workload suite")
	progName := flag.String("prog", "", "program name within -suite")
	print := flag.Bool("print", false, "print the rewritten function (SSA inputs)")
	flag.Parse()

	f, err := loadFunc(*file, *suiteName, *progName)
	if err != nil {
		return err
	}

	r := *regs
	if r == 0 {
		m, err := arch.ByName(*machine)
		if err != nil {
			return err
		}
		r = m.Allocable()
	}

	cfg := core.Config{Registers: r}
	if *allocName != "" {
		a, err := core.AllocatorByName(*allocName)
		if err != nil {
			return err
		}
		cfg.Allocator = a
	}
	out, err := core.Run(f, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("function   %s\n", f.Name)
	fmt.Printf("allocator  %s\n", out.Result.Allocator)
	fmt.Printf("registers  %d\n", r)
	fmt.Printf("values     %d\n", out.Build.Graph.N())
	fmt.Printf("maxlive    %d\n", out.MaxLive)
	fmt.Printf("spilled    %d (cost %.1f of %.1f)\n",
		len(out.SpilledValues), out.SpillCost, out.Problem.G.TotalWeight())
	if len(out.SpilledValues) > 0 {
		names := make([]string, len(out.SpilledValues))
		for i, v := range out.SpilledValues {
			names[i] = f.NameOf(v)
		}
		sort.Strings(names)
		fmt.Printf("spill set  %s\n", strings.Join(names, " "))
	}
	if out.RegisterOf != nil {
		var cells []string
		for val, reg := range out.RegisterOf {
			if reg >= 0 {
				cells = append(cells, fmt.Sprintf("%s=r%d", f.NameOf(val), reg))
			}
		}
		sort.Strings(cells)
		fmt.Printf("assignment %s\n", strings.Join(cells, " "))
	}
	if *print && out.Rewritten != nil {
		fmt.Println()
		fmt.Print(out.Rewritten.String())
	}
	return nil
}

func loadFunc(file, suiteName, progName string) (*ir.Func, error) {
	if suiteName != "" {
		s, ok := bench.SuiteByName(suiteName)
		if !ok {
			return nil, fmt.Errorf("unknown suite %q", suiteName)
		}
		for _, p := range s.Load() {
			if p.Name == progName {
				return p.F, nil
			}
		}
		return nil, fmt.Errorf("no program %q in suite %q", progName, suiteName)
	}
	var src []byte
	var err error
	if file == "" || file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	return ir.Parse(string(src))
}
