// Command layered runs one register allocation end to end and reports the
// decisions: which values spill, the spill cost, and (for SSA inputs) the
// assigned registers and the rewritten function with spill code.
//
// Usage:
//
//	layered -r 8 [-alloc BFPL] [-arch st231] (-file f.ir | -suite eembc -prog aifir) [-print]
//
// The input is either a textual IR file (see regalloc/irx's format) or a
// named program from one of the built-in workload suites. With no -file and
// no -suite, it reads IR from standard input. `-alloc help` lists the
// registered allocator names.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "layered:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("layered", flag.ContinueOnError)
	regs := fs.Int("r", 0, "register count (default: the -arch register file)")
	allocName := fs.String("alloc", "", "allocator name, or 'help' to list (default BFPL/LH)")
	machine := fs.String("arch", "st231", "machine for the default register count (st231, armv7, jvm98)")
	file := fs.String("file", "", "textual IR file to allocate ('-' or empty = stdin)")
	suiteName := fs.String("suite", "", "take the program from this workload suite")
	progName := fs.String("prog", "", "program name within -suite")
	print := fs.Bool("print", false, "print the rewritten function (SSA inputs)")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}
	if *allocName == "help" {
		fmt.Fprintln(out, strings.Join(regalloc.Allocators(), "\n"))
		return nil
	}

	f, err := loadFunc(*file, *suiteName, *progName)
	if err != nil {
		return err
	}

	r := *regs
	if r == 0 {
		m, err := regalloc.MachineByName(*machine)
		if err != nil {
			return err
		}
		r = m.Allocable()
	}

	opts := []regalloc.Option{regalloc.WithRegisters(r)}
	if *allocName != "" {
		opts = append(opts, regalloc.WithAllocator(*allocName))
	}
	eng, err := regalloc.New(opts...)
	if err != nil {
		return err
	}
	res, err := eng.AllocateFunc(context.Background(), f)
	if err != nil {
		return err
	}

	fmt.Fprintf(out, "function   %s\n", f.Name)
	fmt.Fprintf(out, "allocator  %s\n", res.Result.Allocator)
	fmt.Fprintf(out, "registers  %d\n", r)
	fmt.Fprintf(out, "values     %d\n", res.Problem.N())
	fmt.Fprintf(out, "maxlive    %d\n", res.MaxLive)
	fmt.Fprintf(out, "spilled    %d (cost %.1f of %.1f)\n",
		len(res.SpilledValues), res.SpillCost, res.Problem.TotalWeight())
	if len(res.SpilledValues) > 0 {
		names := make([]string, len(res.SpilledValues))
		for i, v := range res.SpilledValues {
			names[i] = f.NameOf(v)
		}
		sort.Strings(names)
		fmt.Fprintf(out, "spill set  %s\n", strings.Join(names, " "))
	}
	if res.RegisterOf != nil {
		var cells []string
		for val, reg := range res.RegisterOf {
			if reg >= 0 {
				cells = append(cells, fmt.Sprintf("%s=r%d", f.NameOf(val), reg))
			}
		}
		sort.Strings(cells)
		fmt.Fprintf(out, "assignment %s\n", strings.Join(cells, " "))
	}
	if *print && res.Rewritten != nil {
		fmt.Fprintln(out)
		fmt.Fprint(out, res.Rewritten.String())
	}
	return nil
}

func loadFunc(file, suiteName, progName string) (*irx.Func, error) {
	if suiteName != "" {
		s, ok := workload.SuiteByName(suiteName)
		if !ok {
			return nil, fmt.Errorf("unknown suite %q", suiteName)
		}
		for _, p := range s.Load() {
			if p.Name == progName {
				return p.F, nil
			}
		}
		return nil, fmt.Errorf("no program %q in suite %q", progName, suiteName)
	}
	var src []byte
	var err error
	if file == "" || file == "-" {
		src, err = io.ReadAll(os.Stdin)
	} else {
		src, err = os.ReadFile(file)
	}
	if err != nil {
		return nil, err
	}
	return irx.Parse(string(src))
}
