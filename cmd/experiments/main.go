// Command experiments regenerates every figure of the paper's evaluation
// section (Figures 8–15) from the synthetic workload suites.
//
// Usage:
//
//	experiments [-fig N] [-v]
//
// Without -fig, all figures are produced in order. Output is plain text:
// one table per figure, with the same rows/series the paper plots.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/regalloc/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (8..15); 0 = all")
	ext := fs.Bool("ext", false, "also run the SSA-construction extension experiment")
	coal := fs.Bool("coalesce", false, "also run the coalescing extension experiment")
	verbose := fs.Bool("v", false, "print per-program progress")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }

	// The chordal figures come in pairs sharing a dataset: (8,11) SPEC2000,
	// (9,12) EEMBC, (10,13) lao-kernels. (14,15) share the JVM98 dataset.
	type figurePair struct {
		suite     workload.Suite
		meanFig   int
		distFig   int
		meanTitle string
		distTitle string
	}
	pairs := []figurePair{
		{workload.SuiteSPEC2000, 8, 11,
			"Figure 8: mean normalized allocation cost, SPEC CPU 2000int on ST231",
			"Figure 11: distribution of per-program normalized costs, SPEC CPU 2000int on ST231"},
		{workload.SuiteEEMBC, 9, 12,
			"Figure 9: mean normalized allocation cost, EEMBC on ST231",
			"Figure 12: distribution of per-program normalized costs, EEMBC on ST231"},
		{workload.SuiteLAOKernels, 10, 13,
			"Figure 10: mean normalized allocation cost, lao-kernels on ARMv7",
			"Figure 13: distribution of per-program normalized costs, lao-kernels on ARMv7"},
	}
	for _, pair := range pairs {
		if !want(pair.meanFig) && !want(pair.distFig) {
			continue
		}
		names := workload.AllocatorNames(workload.ChordalAllocators())
		if progress != nil {
			fmt.Fprintf(progress, "suite %s:\n", pair.suite.Name)
		}
		instances := workload.Run(pair.suite, progress)
		if want(pair.meanFig) {
			fmt.Fprintf(out, "%s\n", pair.meanTitle)
			fmt.Fprint(out, workload.FormatMeansTable(workload.NormalizedMeans(instances, names), names))
			fmt.Fprintln(out)
		}
		if want(pair.distFig) {
			ratios, skipped := workload.PerProgramRatios(instances, names)
			fmt.Fprintf(out, "%s\n", pair.distTitle)
			fmt.Fprint(out, workload.FormatDistTable(ratios, names))
			if skipped > 0 {
				fmt.Fprintf(out, "(skipped %d undefined ratios: optimal cost was zero)\n", skipped)
			}
			fmt.Fprintln(out)
		}
	}

	if want(14) || want(15) {
		names := workload.AllocatorNames(workload.JITAllocators())
		if progress != nil {
			fmt.Fprintf(progress, "suite %s:\n", workload.SuiteJVM98.Name)
		}
		instances := workload.Run(workload.SuiteJVM98, progress)
		if want(14) {
			fmt.Fprintln(out, "Figure 14: mean normalized allocation cost, SPEC JVM98 (non-chordal)")
			fmt.Fprint(out, workload.FormatMeansTable(workload.NormalizedMeans(instances, names), names))
			fmt.Fprintln(out)
		}
		if want(15) {
			fmt.Fprintln(out, "Figure 15: per-benchmark normalized allocation cost, SPEC JVM98, R=6")
			fmt.Fprint(out, workload.FormatPerBenchTable(workload.PerBenchmarkMeans(instances, names, 6), names))
			fmt.Fprintln(out)
		}
	}

	if *ext {
		rows, err := workload.RunSSAExtension(workload.JITSweep)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Extension: SSA-based layered-optimal allocation of the JVM98 methods")
		fmt.Fprintln(out, "(each heuristic normalized by the exact optimum of its own representation)")
		fmt.Fprint(out, workload.FormatSSAExtension(rows))
		fmt.Fprintln(out)
	}

	if *coal {
		fmt.Fprintln(out, "Extension: φ-move elimination by coalescing policy (R = per-function MaxLive)")
		fmt.Fprint(out, workload.FormatCoalesce(workload.RunCoalesce(
			[]workload.Suite{workload.SuiteSPEC2000, workload.SuiteEEMBC, workload.SuiteLAOKernels})))
		fmt.Fprintln(out)
	}
	return nil
}
