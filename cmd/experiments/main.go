// Command experiments regenerates every figure of the paper's evaluation
// section (Figures 8–15) from the synthetic workload suites.
//
// Usage:
//
//	experiments [-fig N] [-v]                         # plain-text figure tables
//	experiments -json QUALITY.json -md QUALITY.md     # committed quality artifacts
//	experiments -against QUALITY.json                 # CI quality gate
//
// Without -fig, all figures are produced in order. Output is plain text:
// one table per figure, with the same rows/series the paper plots.
//
// The -json/-md/-against flags switch to the quality pipeline: the full
// figure sweep plus the coalescing-biased-assignment differential is
// distilled into a quality.Report. -json and -md write the committed
// artifacts ("-" = stdout); -against loads a committed QUALITY.json first
// and diffs the fresh run against it under the default tolerances, exiting
// non-zero on any out-of-tolerance drift — the CI quality gate.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/regalloc/quality"
	"repro/regalloc/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fig := fs.Int("fig", 0, "figure to regenerate (8..15); 0 = all")
	ext := fs.Bool("ext", false, "also run the SSA-construction extension experiment")
	coal := fs.Bool("coalesce", false, "also run the coalescing extension experiment")
	jsonOut := fs.String("json", "", "write the quality report (QUALITY.json) to this path; - = stdout")
	mdOut := fs.String("md", "", "write the quality report's markdown tables to this path; - = stdout")
	against := fs.String("against", "", "diff the fresh quality report against this committed QUALITY.json (CI gate)")
	verbose := fs.Bool("v", false, "print per-program progress")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	var progress io.Writer
	if *verbose {
		progress = os.Stderr
	}

	if *jsonOut != "" || *mdOut != "" || *against != "" {
		return runQuality(*jsonOut, *mdOut, *against, out, progress)
	}

	want := func(n int) bool { return *fig == 0 || *fig == n }

	// The chordal figures come in pairs sharing a dataset: (8,11) SPEC2000,
	// (9,12) EEMBC, (10,13) lao-kernels. (14,15) share the JVM98 dataset.
	type figurePair struct {
		suite     workload.Suite
		meanFig   int
		distFig   int
		meanTitle string
		distTitle string
	}
	pairs := []figurePair{
		{workload.SuiteSPEC2000, 8, 11,
			"Figure 8: mean normalized allocation cost, SPEC CPU 2000int on ST231",
			"Figure 11: distribution of per-program normalized costs, SPEC CPU 2000int on ST231"},
		{workload.SuiteEEMBC, 9, 12,
			"Figure 9: mean normalized allocation cost, EEMBC on ST231",
			"Figure 12: distribution of per-program normalized costs, EEMBC on ST231"},
		{workload.SuiteLAOKernels, 10, 13,
			"Figure 10: mean normalized allocation cost, lao-kernels on ARMv7",
			"Figure 13: distribution of per-program normalized costs, lao-kernels on ARMv7"},
	}
	for _, pair := range pairs {
		if !want(pair.meanFig) && !want(pair.distFig) {
			continue
		}
		names := workload.AllocatorNames(workload.ChordalAllocators())
		if progress != nil {
			fmt.Fprintf(progress, "suite %s:\n", pair.suite.Name)
		}
		instances := workload.Run(pair.suite, progress)
		if want(pair.meanFig) {
			fmt.Fprintf(out, "%s\n", pair.meanTitle)
			fmt.Fprint(out, workload.FormatMeansTable(workload.NormalizedMeans(instances, names), names))
			fmt.Fprintln(out)
		}
		if want(pair.distFig) {
			ratios, skipped := workload.PerProgramRatios(instances, names)
			fmt.Fprintf(out, "%s\n", pair.distTitle)
			fmt.Fprint(out, workload.FormatDistTable(ratios, names))
			if skipped > 0 {
				fmt.Fprintf(out, "(skipped %d undefined ratios: optimal cost was zero)\n", skipped)
			}
			fmt.Fprintln(out)
		}
	}

	if want(14) || want(15) {
		names := workload.AllocatorNames(workload.JITAllocators())
		if progress != nil {
			fmt.Fprintf(progress, "suite %s:\n", workload.SuiteJVM98.Name)
		}
		instances := workload.Run(workload.SuiteJVM98, progress)
		if want(14) {
			fmt.Fprintln(out, "Figure 14: mean normalized allocation cost, SPEC JVM98 (non-chordal)")
			fmt.Fprint(out, workload.FormatMeansTable(workload.NormalizedMeans(instances, names), names))
			fmt.Fprintln(out)
		}
		if want(15) {
			fmt.Fprintln(out, "Figure 15: per-benchmark normalized allocation cost, SPEC JVM98, R=6")
			fmt.Fprint(out, workload.FormatPerBenchTable(workload.PerBenchmarkMeans(instances, names, 6), names))
			fmt.Fprintln(out)
		}
	}

	if *ext {
		rows, err := workload.RunSSAExtension(workload.JITSweep)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, "Extension: SSA-based layered-optimal allocation of the JVM98 methods")
		fmt.Fprintln(out, "(each heuristic normalized by the exact optimum of its own representation)")
		fmt.Fprint(out, workload.FormatSSAExtension(rows))
		fmt.Fprintln(out)
	}

	if *coal {
		fmt.Fprintln(out, "Extension: φ-move elimination by coalescing policy (R = per-function MaxLive)")
		fmt.Fprint(out, workload.FormatCoalesce(workload.RunCoalesce(
			[]workload.Suite{workload.SuiteSPEC2000, workload.SuiteEEMBC, workload.SuiteLAOKernels})))
		fmt.Fprintln(out)
	}
	return nil
}

// runQuality runs the figure-grade quality pipeline and serves the
// -json/-md/-against flags. The committed report is loaded before the
// (expensive) generation so a bad -against path fails fast.
func runQuality(jsonOut, mdOut, against string, out io.Writer, progress io.Writer) error {
	var committed *quality.Report
	if against != "" {
		var err error
		if committed, err = quality.ReadFile(against); err != nil {
			return err
		}
	}
	rep, err := quality.Generate(quality.Options{Progress: progress})
	if err != nil {
		return err
	}
	if jsonOut != "" {
		buf, err := quality.Encode(rep)
		if err != nil {
			return err
		}
		if jsonOut == "-" {
			out.Write(buf)
		} else if err := os.WriteFile(jsonOut, buf, 0o644); err != nil {
			return err
		}
	}
	if mdOut != "" {
		md := quality.Markdown(rep)
		if mdOut == "-" {
			io.WriteString(out, md)
		} else if err := os.WriteFile(mdOut, []byte(md), 0o644); err != nil {
			return err
		}
	}
	if committed != nil {
		if err := quality.Compare(committed, rep, quality.Tolerances{}); err != nil {
			return fmt.Errorf("quality gate failed against %s:\n%w", against, err)
		}
		fmt.Fprintf(out, "quality gate: fresh run matches %s within tolerances\n", against)
	}
	return nil
}
