package main

import (
	"strings"
	"testing"
)

// TestRunFigure14 smoke-tests the experiment driver on the fastest figure:
// the JVM98 table must appear with the JIT allocator lineup as columns and
// the Optimal column pinned at 1.000 on every row.
func TestRunFigure14(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "14"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "Figure 14") {
		t.Fatalf("missing figure title:\n%s", text)
	}
	for _, col := range []string{"DLS", "BLS", "GC", "LH", "Optimal"} {
		if !strings.Contains(text, col) {
			t.Errorf("missing allocator column %s", col)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 6 && fields[0] != "registers" {
			if fields[5] != "1.000" {
				t.Errorf("Optimal not normalized to 1.000 in row: %s", line)
			}
		}
	}
}

// TestRunFigure15 shares figure 14's dataset and exercises the
// per-benchmark aggregation path.
func TestRunFigure15(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "15"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Figure 15") || !strings.Contains(out.String(), "benchmark") {
		t.Fatalf("figure 15 table malformed:\n%s", out.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-fig", "notanumber"}, &out); err == nil {
		t.Error("bad -fig value accepted")
	}
}

// TestRunAgainstMissingFile: the committed report is loaded before the
// expensive generation, so a bad -against path must fail immediately.
func TestRunAgainstMissingFile(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-against", "/nonexistent/QUALITY.json"}, &out); err == nil {
		t.Error("missing -against file accepted")
	}
}
