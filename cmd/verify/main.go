// Command verify runs the semantic verification harness offline: long soak
// runs of the differential check (reference interpretation of original vs
// spill-everywhere-rewritten functions, allocation pressure, register
// assignment) over seeded random programs or a textual IR file.
//
// Usage:
//
//	verify [-n 200] [-seed 1] [-r 2,3,4,8] [-alloc BFPL,LH] [-budget 4096] [-max-fail 1] [-v]
//	verify -machines all            # machine-constrained soak over every machine
//	verify -machines st231,armv7    # ... over specific machines
//	verify -degraded                # degradation-ladder soak: budget-tripped
//	                                # outcomes must be degraded-but-correct
//	verify -degraded -machines all  # ... under machine constraints
//	verify -file f.ir
//	verify -module m.ir
//
// Every failure prints the generator seed, allocator, register count and
// input vector needed to replay it deterministically. Exit status is
// non-zero if any check fails.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/regalloc/irx"
	"repro/regalloc/verifier"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "verify:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("verify", flag.ContinueOnError)
	n := fs.Int("n", 200, "number of generated functions to check")
	seed := fs.Int64("seed", 1, "base generator seed")
	regs := fs.String("r", "2,3,4,8", "comma-separated register counts")
	allocs := fs.String("alloc", "", "comma-separated allocator names (default: all)")
	budget := fs.Int("budget", 0, "interpreter semantic step budget (0 = default)")
	maxFail := fs.Int("max-fail", 1, "stop after this many failures")
	machines := fs.String("machines", "", "comma-separated machine names for the machine-constrained soak ('all' = every registered machine; default: unconstrained soak)")
	degraded := fs.Bool("degraded", false, "soak the degradation ladder: sweep budgets that force trips and verify every degraded outcome")
	file := fs.String("file", "", "check one textual IR file instead of soaking")
	module := fs.String("module", "", "check every function of a textual IR module file")
	verbose := fs.Bool("v", false, "print progress every 100 functions")
	if err := fs.Parse(args); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return nil
		}
		return err
	}

	opts := verifier.Options{Budget: *budget}
	for _, part := range strings.Split(*regs, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		r, err := strconv.Atoi(part)
		if err != nil || r < 1 {
			return fmt.Errorf("bad register count %q", part)
		}
		opts.Registers = append(opts.Registers, r)
	}
	if *allocs != "" {
		for _, a := range strings.Split(*allocs, ",") {
			opts.Allocators = append(opts.Allocators, strings.TrimSpace(a))
		}
	}

	if *file != "" {
		src, err := os.ReadFile(*file)
		if err != nil {
			return err
		}
		f, err := irx.Parse(string(src))
		if err != nil {
			return err
		}
		if err := verifier.CheckFunc(f, opts); err != nil {
			return err
		}
		fmt.Fprintf(out, "ok   %s: all allocator/register configurations verified\n", f.Name)
		return nil
	}

	if *module != "" {
		src, err := os.ReadFile(*module)
		if err != nil {
			return err
		}
		m, err := irx.ParseModule(string(src))
		if err != nil {
			return err
		}
		if err := verifier.CheckModule(m, opts); err != nil {
			return err
		}
		fmt.Fprintf(out, "ok   %d module functions: all allocator/register configurations verified\n", len(m.Funcs))
		return nil
	}

	var progress func(done, failed int)
	if *verbose {
		progress = func(done, failed int) {
			if done%100 == 0 {
				fmt.Fprintf(out, "  %d/%d checked, %d failures\n", done, *n, failed)
			}
		}
	}
	var fails []*verifier.Failure
	if *degraded {
		var cov verifier.RungCoverage
		if *machines != "" {
			var names []string
			if *machines != "all" {
				for _, m := range strings.Split(*machines, ",") {
					names = append(names, strings.TrimSpace(m))
				}
			}
			var err error
			fails, cov, err = verifier.SoakConstrainedDegraded(*seed, *n, names, opts, *maxFail, progress)
			if err != nil {
				return err
			}
		} else {
			fails, cov = verifier.SoakDegraded(*seed, *n, opts, *maxFail, progress)
		}
		fmt.Fprintf(out, "checked %d degraded seeds (%d..%d), registers %v: %d failures, rungs %v\n",
			*n, *seed, *seed+int64(*n)-1, opts.Registers, len(fails), cov)
		for _, f := range fails {
			fmt.Fprintf(out, "FAIL %v\n", f)
		}
		if len(fails) > 0 {
			return fmt.Errorf("%d of %d functions failed degraded verification", len(fails), *n)
		}
		return nil
	}
	if *machines != "" {
		var names []string
		if *machines != "all" {
			for _, m := range strings.Split(*machines, ",") {
				names = append(names, strings.TrimSpace(m))
			}
		}
		var err error
		fails, err = verifier.SoakConstrained(*seed, *n, names, opts, *maxFail, progress)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "checked %d constrained seeds (%d..%d), machines %s, registers %v: %d failures\n",
			*n, *seed, *seed+int64(*n)-1, *machines, opts.Registers, len(fails))
	} else {
		fails = verifier.Soak(*seed, *n, opts, *maxFail, progress)
		fmt.Fprintf(out, "checked %d generated functions (seeds %d..%d), registers %v: %d failures\n",
			*n, *seed, *seed+int64(*n)-1, opts.Registers, len(fails))
	}
	for _, f := range fails {
		fmt.Fprintf(out, "FAIL %v\n", f)
	}
	if len(fails) > 0 {
		return fmt.Errorf("%d of %d functions failed verification", len(fails), *n)
	}
	return nil
}
