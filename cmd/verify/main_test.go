package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSoak(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-n", "5", "-seed", "1", "-r", "2,4"}, &out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "checked 5 generated functions") || !strings.Contains(text, "0 failures") {
		t.Fatalf("unexpected soak summary:\n%s", text)
	}
}

func TestRunFile(t *testing.T) {
	var out strings.Builder
	file := filepath.Join("..", "..", "internal", "ir", "testdata", "deadphi.ir")
	if err := run([]string{"-file", file}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok   deadphi") {
		t.Fatalf("file check not reported:\n%s", out.String())
	}
}

func TestRunBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-r", "zero"}, &out); err == nil {
		t.Error("bad -r accepted")
	}
	if err := run([]string{"-file", "missing.ir"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"-n", "1", "-alloc", "bogus"}, &out); err == nil {
		t.Error("unknown allocator accepted")
	}
}

func TestRunModuleFile(t *testing.T) {
	var out strings.Builder
	path := filepath.Join("..", "..", "internal", "ir", "testdata", "modules", "mixed.ir")
	if err := run([]string{"-module", path, "-r", "2,4"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ok   3 module functions") {
		t.Errorf("unexpected output:\n%s", out.String())
	}
}
