package main

import (
	"strings"
	"testing"
)

// TestRunExample smoke-tests the compiler-backend sweep: one function, all
// chordal allocators, several register counts, costs tabulated.
func TestRunExample(t *testing.T) {
	var out strings.Builder
	if err := runExample(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	if !strings.Contains(text, "function hot_kernel:") {
		t.Fatalf("missing header:\n%s", text)
	}
	for _, col := range []string{"GC", "NL", "FPL", "BL", "BFPL", "Optimal"} {
		if !strings.Contains(text, col) {
			t.Errorf("missing allocator column %s", col)
		}
	}
	if !strings.Contains(text, "lower is better") {
		t.Errorf("missing footer:\n%s", text)
	}
}
