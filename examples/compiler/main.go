// Compiler-backend scenario: sweep every allocator over one mid-sized SSA
// function at several register counts — the experiment a compiler writer
// runs when choosing a spilling heuristic. The table shows the paper's
// headline result in miniature: the layered allocators (especially BFPL)
// track the optimal spill cost closely while Chaitin–Briggs colouring (GC)
// pays a visible premium, and plain NL drifts once the register count
// exceeds the number of layers that cover the graph.
//
// Run with:
//
//	go run ./examples/compiler
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"repro/regalloc"
	"repro/regalloc/workload"
)

func main() {
	if err := runExample(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runExample(stdout io.Writer) error {
	// A deterministic SPEC-like function from the workload generator: ~30
	// long-lived temporaries across three loop nests.
	f := workload.GenSSA("hot_kernel", 2026, workload.Shape{
		Params:      4,
		Segments:    6,
		MaxDepth:    3,
		StraightLen: 6,
		LoopProb:    0.4,
		BranchProb:  0.3,
		Carried:     3,
		LongLived:   24,
	})

	allocators := []string{"GC", "NL", "FPL", "BL", "BFPL", "Optimal"}
	registers := []int{2, 4, 8, 16, 24}

	probeEng, err := regalloc.New(regalloc.WithRegisters(1), regalloc.WithoutRewrite())
	if err != nil {
		return err
	}
	probe, err := probeEng.AllocateFunc(context.Background(), f)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "function %s: %d values, %d interference edges, MaxLive %d\n\n",
		f.Name, probe.Problem.N(), probe.Problem.Graph().Graph.M(), probe.MaxLive)

	w := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "R\t")
	for _, name := range allocators {
		fmt.Fprintf(w, "%s\t", name)
	}
	fmt.Fprintln(w)
	for _, r := range registers {
		fmt.Fprintf(w, "%d\t", r)
		for _, name := range allocators {
			eng, err := regalloc.New(
				regalloc.WithRegisters(r), regalloc.WithAllocator(name),
				regalloc.WithoutRewrite())
			if err != nil {
				return err
			}
			out, err := eng.AllocateFunc(context.Background(), f)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%.0f\t", out.SpillCost)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		return err
	}
	fmt.Fprintln(stdout, "\n(table entries are total spill costs; lower is better)")
	return nil
}
