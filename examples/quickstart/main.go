// Quickstart: allocate registers for a small SSA function through the
// public regalloc API — construct an Engine with functional options, run
// one function, and print every stage of the decoupled pipeline: pressure,
// spill decisions, register assignment, and the rewritten function with
// spill code.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro/regalloc"
	"repro/regalloc/irx"
)

// A hot loop with more simultaneously live values than registers: with
// three registers something must spill, and the spill-cost model (10× per
// loop level) steers the allocator to evict the values with the fewest
// loop-frequency accesses.
const src = `
func dot ssa {
b0:
  n    = param 0
  ax   = param 1
  bx   = param 2
  bias = param 3
  acc0 = const 0
  br b1
b1:
  i   = phi [b0: n],    [b2: i2]
  acc = phi [b0: acc0], [b2: acc2]
  c   = unary i
  condbr c, b2, b3
b2:
  av   = load ax
  bv   = load bx
  p    = arith av, bv
  q    = arith p, bias
  acc2 = arith acc, q
  i2   = unary i
  br b1
b3:
  r = arith acc, bias
  ret r
}`

func main() {
	if err := runExample(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runExample(stdout io.Writer) error {
	f := irx.MustParse(src)
	eng, err := regalloc.New(
		regalloc.WithRegisters(3),
		regalloc.WithAllocator("BFPL"),
	)
	if err != nil {
		return err
	}
	out, err := eng.AllocateFunc(context.Background(), f)
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "function %s: %d values, MaxLive %d, %d registers\n",
		f.Name, out.Problem.N(), out.MaxLive, 3)
	fmt.Fprintf(stdout, "allocator %s spilled %d values (cost %.0f of %.0f):\n",
		out.Result.Allocator, len(out.SpilledValues),
		out.SpillCost, out.Problem.TotalWeight())
	for _, v := range out.SpilledValues {
		fmt.Fprintf(stdout, "  spill %-5s (cost %.0f)\n", f.NameOf(v), out.Problem.Weight[out.VertexOf[v]])
	}

	fmt.Fprintln(stdout, "\nregister assignment (tree-scan over the dominance tree):")
	for val := 0; val < f.NumValues; val++ {
		if reg := out.RegisterOf[val]; reg >= 0 {
			fmt.Fprintf(stdout, "  %-5s -> r%d\n", f.NameOf(val), reg)
		}
	}

	fmt.Fprintln(stdout, "\nrewritten function (spill-everywhere code):")
	fmt.Fprint(stdout, out.Rewritten.String())
	return nil
}
