package main

import (
	"strings"
	"testing"
)

// TestRunExample smoke-tests the quickstart end to end: it must report the
// pipeline stages and print a rewritten function containing spill code
// (three registers against MaxLive 7 forces spills).
func TestRunExample(t *testing.T) {
	var out strings.Builder
	if err := runExample(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"function dot:",
		"spilled",
		"register assignment",
		"rewritten function",
		"func dot ssa {",
		"reload",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
