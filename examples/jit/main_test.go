package main

import (
	"strings"
	"testing"
)

// TestRunExample smoke-tests the JIT comparison: five methods, the JIT
// allocator lineup as columns, and a normalized summary in which the
// layered heuristic does not lose to the linear scans.
func TestRunExample(t *testing.T) {
	var out strings.Builder
	if err := runExample(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{"JIT target", "method0", "method4", "total", "normalized to optimal:"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	for _, col := range []string{"DLS", "BLS", "GC", "LH", "Optimal"} {
		if !strings.Contains(text, col) {
			t.Errorf("missing allocator column %s", col)
		}
	}
}
