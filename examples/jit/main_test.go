package main

import (
	"strings"
	"testing"
)

// TestRunExample smoke-tests the tiering JIT loop: the initial revision
// compiles every method, promotion ticks recompile only the promoted
// handful, and the hot-swap reorder tick compiles nothing (the incremental
// diff is content-addressed). The output is fully deterministic.
func TestRunExample(t *testing.T) {
	var out strings.Builder
	if err := runExample(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"tiering JIT",
		"tick 1: compiled 12, reused  0",
		"tick 4: compiled  0, reused 12",
		"method table reordered",
		"methods loaded",
		"revision holds 14 method outcomes",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
	// Every tick after the first must reuse most of the module.
	if strings.Count(text, "promoted [") != 4 {
		t.Errorf("expected 4 promotion ticks:\n%s", text)
	}

	// Determinism: a second run prints identical bytes.
	var again strings.Builder
	if err := runExample(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != text {
		t.Error("example output is not deterministic across runs")
	}
}
