// JIT scenario: a just-in-time compiler allocating registers for non-SSA
// bytecode-derived methods, where interference graphs are not chordal and
// compile time matters. The layered heuristic (LH) clusters variables into
// greedy stable sets and keeps the R heaviest clusters — linear time, like
// linear scan, but with the paper's near-optimal spill quality.
//
// The example compiles a small batch of "methods" with 6 registers (an
// IA32-flavoured JIT target) and compares LH with the JIT baselines:
// original linear scan (DLS), the Belady variant (BLS), and Chaitin–Briggs
// colouring (GC), all against the exact optimum.
//
// Run with:
//
//	go run ./examples/jit
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"
	"text/tabwriter"

	"repro/regalloc"
	"repro/regalloc/workload"
)

func main() {
	if err := runExample(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func runExample(stdout io.Writer) error {
	target := regalloc.JVM98
	regs := 6
	fmt.Fprintf(stdout, "JIT target %s: allocating with %d of %d registers\n\n",
		target.Name, regs, target.IntRegs)

	var progs []workload.Program
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("method%d", i)
		f := workload.GenNonSSA(name, int64(9000+37*i), workload.NonSSAShape{
			Vars:        20 + 3*i,
			Params:      4,
			Segments:    5,
			MaxDepth:    2,
			StraightLen: 6,
			LoopProb:    0.4,
			BranchProb:  0.35,
		})
		progs = append(progs, workload.Program{Name: name, F: f})
	}

	allocators := []string{"DLS", "BLS", "GC", "LH", "Optimal"}
	w := tabwriter.NewWriter(stdout, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprint(w, "method\t|V|\tmaxlive\t")
	for _, a := range allocators {
		fmt.Fprintf(w, "%s\t", a)
	}
	fmt.Fprintln(w)

	totals := make(map[string]float64)
	for _, p := range progs {
		var cells []float64
		var size, maxlive int
		for _, name := range allocators {
			eng, err := regalloc.New(
				regalloc.WithRegisters(regs), regalloc.WithAllocator(name))
			if err != nil {
				return err
			}
			out, err := eng.AllocateFunc(context.Background(), p.F)
			if err != nil {
				return err
			}
			cells = append(cells, out.SpillCost)
			totals[name] += out.SpillCost
			size, maxlive = out.Problem.N(), out.MaxLive
		}
		fmt.Fprintf(w, "%s\t%d\t%d\t", p.Name, size, maxlive)
		for _, c := range cells {
			fmt.Fprintf(w, "%.0f\t", c)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprint(w, "total\t\t\t")
	for _, name := range allocators {
		fmt.Fprintf(w, "%.0f\t", totals[name])
	}
	fmt.Fprintln(w)
	if err := w.Flush(); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\nnormalized to optimal:")
	for _, name := range allocators {
		fmt.Fprintf(stdout, "  %s %.2f", name, totals[name]/totals["Optimal"])
	}
	fmt.Fprintln(stdout)
	return nil
}
