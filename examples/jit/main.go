// JIT scenario: a tiering just-in-time compiler recompiling a mutating
// module of non-SSA bytecode-derived methods, where interference graphs are
// not chordal and compile time matters. Allocation runs the layered
// heuristic (LH) — linear time, like linear scan, but with the paper's
// near-optimal spill quality — and the module is recompiled each tick with
// the engine's incremental API: only methods whose code actually changed
// re-run the allocator, everything else is reused from the previous
// revision at fingerprint cost.
//
// Each tick the profiler "promotes" a few hot methods to a higher
// optimization tier (their bodies change), the runtime occasionally
// hot-swaps the method table order, and new methods get loaded; the
// example prints how many methods each revision truly compiled versus
// reused. The diff is content-addressed, not positional, so the reorder
// tick compiles nothing.
//
// Run with:
//
//	go run ./examples/jit
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"os"

	"repro/regalloc"
	"repro/regalloc/irx"
	"repro/regalloc/workload"
)

func main() {
	if err := runExample(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

const (
	numMethods = 12
	regs       = 6
	ticks      = 6
)

// genMethod deterministically builds method i at the given optimization
// tier; a tier bump changes the body (longer straight-line segments, the
// shape of inlining), so the method's fingerprint changes and it must be
// recompiled.
func genMethod(i, tier int) *irx.Func {
	return workload.GenNonSSA(fmt.Sprintf("method%d", i), int64(9000+37*i+1000*tier), workload.NonSSAShape{
		Vars:        18 + 2*(i%5) + 2*tier,
		Params:      4,
		Segments:    4,
		MaxDepth:    2,
		StraightLen: 5 + tier,
		LoopProb:    0.4,
		BranchProb:  0.35,
	})
}

func runExample(stdout io.Writer) error {
	target := regalloc.JVM98
	fmt.Fprintf(stdout, "tiering JIT on %s: %d methods, %d of %d registers, LH allocator\n\n",
		target.Name, numMethods, regs, target.IntRegs)

	eng, err := regalloc.New(
		regalloc.WithRegisters(regs),
		regalloc.WithAllocator("LH"),
		regalloc.WithJobs(2),
	)
	if err != nil {
		return err
	}

	module := &irx.Module{}
	tier := make(map[string]int)
	for i := 0; i < numMethods; i++ {
		module.Funcs = append(module.Funcs, genMethod(i, 0))
	}

	ctx := context.Background()
	var rev *regalloc.Revision
	totalCompiled, totalScheduled := 0, 0
	for tick := 1; tick <= ticks; tick++ {
		var event string
		switch {
		case tick == 1:
			event = "initial load"
		case tick == 4:
			// The runtime hot-swaps the dispatch table: same bodies, new
			// order. Content-addressed reuse makes this free.
			for i, j := 0, len(module.Funcs)-1; i < j; i, j = i+1, j-1 {
				module.Funcs[i], module.Funcs[j] = module.Funcs[j], module.Funcs[i]
			}
			event = "method table reordered"
		default:
			// The profiler promotes a deterministic handful of hot methods.
			var promoted []string
			for i := 0; i < numMethods; i++ {
				if (i+tick)%5 == 0 {
					name := fmt.Sprintf("method%d", i)
					tier[name]++
					for j, f := range module.Funcs {
						if f.Name == name {
							module.Funcs[j] = genMethod(i, tier[name])
						}
					}
					promoted = append(promoted, fmt.Sprintf("%s→t%d", name, tier[name]))
				}
			}
			event = "promoted " + fmt.Sprint(promoted)
		}
		if tick == 5 {
			// A class load brings in two new methods.
			for i := numMethods; i < numMethods+2; i++ {
				module.Funcs = append(module.Funcs, genMethod(i, 0))
			}
			event += " + 2 methods loaded"
		}

		results, next, err := eng.AllocateModuleIncremental(ctx, module, rev)
		if err != nil {
			return err
		}
		if err := regalloc.FirstError(results); err != nil {
			return err
		}
		compiled, reused, cost := 0, 0, 0.0
		for i := range results {
			if results[i].Cached {
				reused++
			} else {
				compiled++
			}
			cost += results[i].Outcome.SpillCost
		}
		totalCompiled += compiled
		totalScheduled += len(results)
		fmt.Fprintf(stdout, "tick %d: compiled %2d, reused %2d  (spill cost %5.0f)  %s\n",
			tick, compiled, reused, cost, event)
		rev = next
	}

	fmt.Fprintf(stdout, "\nallocator ran on %d of %d scheduled method compilations; revision holds %d method outcomes\n",
		totalCompiled, totalScheduled, rev.Len())
	return nil
}
