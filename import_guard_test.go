package repro

import (
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// TestNoInternalImportsInFrontEnds enforces the public-API boundary: every
// file under cmd/ and examples/ — the code external users copy from — must
// import only the supported surface (repro/regalloc and its subpackages),
// never repro/internal/... directly. Parsing the imports keeps the guard
// honest even for files behind build tags.
func TestNoInternalImportsInFrontEnds(t *testing.T) {
	fset := token.NewFileSet()
	for _, root := range []string{"cmd", "examples"} {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() || !strings.HasSuffix(path, ".go") {
				return nil
			}
			f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
			if err != nil {
				return err
			}
			for _, imp := range f.Imports {
				p, err := strconv.Unquote(imp.Path.Value)
				if err != nil {
					return err
				}
				if p == "repro/internal" || strings.HasPrefix(p, "repro/internal/") {
					t.Errorf("%s imports %s: cmd/ and examples/ must use the public regalloc surface only", path, p)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestPublicAPISurfaceGolden diffs `go doc repro/regalloc` against the
// committed golden file, so changes to the public surface are deliberate:
// editing the API means regenerating regalloc/api.golden in the same
// commit (go doc repro/regalloc > regalloc/api.golden).
func TestPublicAPISurfaceGolden(t *testing.T) {
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not on PATH")
	}
	out, err := exec.Command(goBin, "doc", "repro/regalloc").Output()
	if err != nil {
		t.Fatalf("go doc repro/regalloc: %v", err)
	}
	golden, err := os.ReadFile(filepath.Join("regalloc", "api.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != string(golden) {
		t.Errorf("public API surface changed.\nIf intentional, regenerate the golden file:\n  go doc repro/regalloc > regalloc/api.golden\n--- go doc\n%s\n--- golden\n%s", out, golden)
	}
}
